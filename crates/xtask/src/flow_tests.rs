//! Self-tests for the F1–F3 flow analyses: each committed `f*` fixture must
//! trip its analysis with the documented precision, and the real workspace
//! must be clean modulo the shared baseline and the panic allowlist. Also
//! holds the call-graph snapshot test pinning `Policy` dispatch coverage.

use crate::flow::{FlowDiag, FlowKind, FnGraph, Workspace};
use crate::reach::{self, PanicAllowlist};
use crate::{graph, lockorder, taint};
use std::path::PathBuf;

pub(crate) fn fixture_src(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"))
}

/// Loads one fixture as a single-file workspace under crate `core`.
pub(crate) fn fixture_ws(name: &str) -> (Workspace, FnGraph) {
    let src = fixture_src(name);
    let ws = Workspace::from_sources(&[("core", "crates/core/src/fixture.rs", &src)]);
    let g = FnGraph::build(&ws);
    (ws, g)
}

#[test]
fn f1_fixture_taints_sink_through_call_hops() {
    let (ws, g) = fixture_ws("f1_taint.rs");
    let t = taint::compute(&ws, &g);
    let diags = taint::diagnostics(&ws, &g, &t);
    // Exactly one tainted sink: `decide_batch`, whose SystemTime::now()
    // source sits behind the score_all -> jitter -> wall_clock_nanos chain.
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.kind, FlowKind::DeterminismTaint);
    assert!(d.symbol.ends_with("decide_batch"), "{d:?}");
    let trace = d.trace.join("\n");
    assert!(trace.contains("wall_clock_nanos"), "{trace}");
    assert!(trace.contains("SystemTime::now()"), "{trace}");
    // The justified log-only read must not taint `decide_fleet`, and the
    // seeded path must not taint `decide_one`.
    assert!(!diags.iter().any(|d| d.symbol.contains("decide_fleet")), "{diags:?}");
    assert!(!diags.iter().any(|d| d.symbol.contains("decide_one")), "{diags:?}");
}

#[test]
fn f1_dot_export_marks_sources_and_sinks() {
    let (ws, g) = fixture_ws("f1_taint.rs");
    let t = taint::compute(&ws, &g);
    let dot = taint::dot(&ws, &g, &t);
    assert!(dot.starts_with("digraph determinism_taint"), "{dot}");
    assert!(dot.contains("core::Jittery::decide_batch\" [shape=doubleoctagon"), "{dot}");
    assert!(dot.contains("core::wall_clock_nanos\" [shape=box, style=filled"), "{dot}");
    assert!(dot.contains("\"core::jitter\" -> \"core::wall_clock_nanos\""), "{dot}");
    // Untainted functions stay out of the export.
    assert!(!dot.contains("seeded_score"), "{dot}");
}

#[test]
fn f2_fixture_flags_reachable_panics_only() {
    let (ws, g) = fixture_ws("f2_panic.rs");
    let allow = PanicAllowlist::parse(
        r#"{"entries": [
            {"function": "core::audited_assert", "reason": "fail-fast by contract"},
            {"function": "core::never_called", "reason": "stale entry"}
        ]}"#,
    )
    .expect("allowlist parses");
    let (diags, warnings) = reach::analyze(&ws, &g, &["core::serve"], &allow);
    let symbols: Vec<&str> = diags.iter().map(|d| d.symbol.as_str()).collect();
    // bill_day (index) and cadence_hit (modulo + unwrap) are reachable and
    // unlisted; the allowlisted assert, the waived index, and the
    // unreachable offline_report are not reported.
    assert_eq!(symbols, vec!["core::bill_day", "core::cadence_hit"], "{diags:?}");
    let cadence = &diags[1];
    assert!(cadence.message.contains("1 unwrap"), "{cadence:?}");
    assert!(cadence.message.contains("1 modulo"), "{cadence:?}");
    assert!(cadence.trace.iter().any(|s| s.contains("core::serve")), "{cadence:?}");
    // The entry matching nothing surfaces as a warning.
    assert_eq!(warnings.len(), 1, "{warnings:?}");
    assert!(warnings[0].contains("core::never_called"), "{warnings:?}");
}

#[test]
fn f2_allowlist_rejects_empty_reasons_and_junk() {
    assert!(PanicAllowlist::parse("{}").is_err());
    assert!(PanicAllowlist::parse(r#"{"entries": [{"function": "f"}]}"#).is_err());
    assert!(
        PanicAllowlist::parse(r#"{"entries": [{"function": "f", "reason": "  "}]}"#).is_err(),
        "allowlist entries are audits; a blank reason is no audit"
    );
}

#[test]
fn f3_fixture_reports_the_inverted_order_cycle() {
    let (ws, g) = fixture_ws("f3_lockorder.rs");
    let diags = lockorder::analyze(&ws, &g);
    // apply/snapshot agree (actor -> critic); rollback inverts through
    // log_actor (critic -> actor): exactly one cycle, reported once.
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.kind, FlowKind::LockOrder);
    assert!(d.message.contains("actor -> critic -> actor"), "{d:?}");
    let trace = d.trace.join("\n");
    assert!(trace.contains("`critic` held while acquiring `actor`"), "{trace}");
    assert!(trace.contains("rollback"), "{trace}");
    assert!(!trace.contains("audit"), "independent lock must stay out: {trace}");
}

#[test]
fn f3_consistent_orders_are_silent() {
    let src = r"
        pub fn a(s: &S) { let x = s.first.lock(); let _y = s.second.lock(); drop(x); }
        pub fn b(s: &S) { let x = s.first.lock(); let _y = s.second.lock(); drop(x); }
    ";
    let ws = Workspace::from_sources(&[("core", "crates/core/src/x.rs", src)]);
    let g = FnGraph::build(&ws);
    assert!(lockorder::analyze(&ws, &g).is_empty());
}

#[test]
fn f3_same_statement_temporaries_order_locks() {
    // Both guards live to the statement's end: a -> b is recorded, and the
    // reversed function closes the cycle.
    let src = r"
        pub fn merge(s: &S) -> usize { combine(s.a.lock(), s.b.lock()) }
        pub fn unmerge(s: &S) -> usize { combine(s.b.lock(), s.a.lock()) }
    ";
    let ws = Workspace::from_sources(&[("core", "crates/core/src/x.rs", src)]);
    let g = FnGraph::build(&ws);
    let diags = lockorder::analyze(&ws, &g);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("a -> b -> a"), "{diags:?}");
}

#[test]
fn flow_diag_display_is_file_line_formatted() {
    let d = FlowDiag {
        kind: FlowKind::PanicReachability,
        file: "crates/core/src/serve.rs".to_string(),
        line: 651,
        symbol: "core::serve".to_string(),
        message: "m".to_string(),
        trace: vec!["calls x".to_string()],
    };
    let rendered = d.to_string();
    assert!(rendered.starts_with("crates/core/src/serve.rs:651: flow[F2 panic-reachability]"));
    assert!(rendered.contains("\n    calls x"));
}

#[test]
fn call_graph_snapshot_covers_policy_dispatch() {
    // Satellite gate: the symbol/call graph must keep resolving the Policy
    // surface the flow analyses depend on. If an impl or dispatch edge
    // disappears, taint and reachability silently lose coverage.
    let root = crate::walk::repo_root();
    let ws = Workspace::load(&root).expect("workspace loads");
    let g = FnGraph::build(&ws);

    // Every Policy impl's decide family resolves to nodes, and the trait
    // itself lives in core.
    for key in [
        "core::Policy::decide_one",
        "core::Policy::decide_batch",
        "core::Policy::decide_batch_into",
    ] {
        assert!(g.by_key(key).is_some(), "missing {key}");
    }
    let decide_into = g.named("decide_batch_into");
    assert!(decide_into.len() >= 4, "expected several decide_batch_into defs: {decide_into:?}");
    let crates: Vec<&str> = decide_into.iter().map(|&ix| g.nodes[ix].krate.as_str()).collect();
    assert!(crates.contains(&"core"), "{crates:?}");

    // The batch engine's decision loop links to EVERY decide_batch_into
    // impl — the conservative union that models `dyn Policy` dispatch.
    let run_shard = g.by_key("core::run_shard").expect("core::run_shard");
    for &impl_ix in decide_into {
        assert!(
            g.nodes[run_shard].callees.contains(&impl_ix),
            "run_shard must link to {} for dispatch coverage",
            g.nodes[impl_ix].key
        );
    }

    // The SymbolGraph view agrees: both batch entry points' call sites
    // resolve (`decide_batch` survives as the owned-buffer wrapper used
    // by `decide_fleet`).
    let parsed = ws.parsed();
    let sg = graph::SymbolGraph::build(&parsed);
    for name in ["decide_batch", "decide_batch_into"] {
        let edge = sg.edges.iter().find(|e| e.to_name == name && e.from_crate == "core");
        assert!(edge.is_some_and(|e| e.to_crate.as_deref() == Some("core")), "{name}: {edge:?}");
    }

    // The F2 roots exist; a typo here would silently empty the analysis.
    for key in reach::ROOTS {
        assert!(g.by_key(key).is_some(), "F2 root {key} not in the call graph");
    }
}

#[test]
fn flow_tree_is_clean_modulo_baseline_and_allowlist() {
    // The gate `cargo xtask check` enforces: every flow diagnostic in the
    // real workspace is fixed, waived in place, allowlisted, or baselined.
    let root = crate::walk::repo_root();
    let ws = Workspace::load_flow(&root).expect("workspace loads");
    let g = FnGraph::build(&ws);
    let allow = PanicAllowlist::load(&root).expect("allowlist parses");
    let (diags, _warnings) = crate::flow::analyze(&ws, &g, &allow);
    let base = crate::baseline::Baseline::load(&root).expect("baseline parses");
    let items: Vec<(String, String)> =
        diags.iter().map(|d| (d.kind.name().to_string(), d.file.clone())).collect();
    let applied = base.apply_named(&items, &crate::baseline::today_utc());
    let fresh: Vec<String> = diags
        .iter()
        .zip(&applied.matched)
        .filter(|(_, m)| m.is_none())
        .map(|(d, _)| d.to_string())
        .collect();
    assert!(
        fresh.is_empty(),
        "workspace has non-baselined flow diagnostics:\n{}",
        fresh.join("\n")
    );
}
