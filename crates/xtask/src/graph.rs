//! Workspace-wide symbol and call graph over the first-party crates.
//!
//! Built from the per-file item trees of [`crate::parser`]: every item is
//! registered under its defining crate, `use` declarations become crate
//! dependency edges, and function bodies are scanned for call sites which
//! are resolved (best-effort, by name, through the use-graph) to defining
//! crates. All containers are `BTreeMap`/`BTreeSet`, so graph output is
//! deterministic — the same discipline lint L5 enforces on the product
//! crates.

use crate::lexer::Lexed;
use crate::parser::{walk_items, Item, ItemKind, Vis};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Maps a crate *directory* name (`crates/<dir>`) to its library target
/// name as it appears in `use` paths. Keep in sync with `crates/*/Cargo.toml`.
pub const CRATE_LIB_NAMES: [(&str, &str); 10] = [
    ("pricing", "pricing"),
    ("trace", "tracegen"),
    ("forecast", "forecast"),
    ("nn", "nn"),
    ("rl", "rl"),
    ("stream", "stream"),
    ("store", "store"),
    ("core", "minicost"),
    ("bench", "bench_support"),
    ("xtask", "xtask"),
];

/// One symbol definition in the graph.
#[derive(Clone, Debug)]
pub struct Def {
    /// Crate directory name (`pricing`, `trace`, ...).
    pub krate: String,
    /// Repo-relative file path.
    pub file: String,
    /// Qualified name within the crate (`Container::name` or `name`).
    pub qualified: String,
    /// Item kind.
    pub kind: ItemKind,
    /// 1-based definition line.
    pub line: usize,
    /// Bare `pub` visibility.
    pub is_pub: bool,
    /// Outer doc comment present.
    pub has_doc: bool,
    /// Defined inside test code.
    pub in_test: bool,
}

/// One call site resolved (or not) to a definition.
#[derive(Clone, Debug)]
pub struct CallEdge {
    /// Qualified caller (`crate::Container::fn`).
    pub from: String,
    /// Caller's crate directory name.
    pub from_crate: String,
    /// Callee name as written.
    pub to_name: String,
    /// Crate the callee resolved to, when the name is defined exactly once
    /// or the use-graph disambiguates it.
    pub to_crate: Option<String>,
}

/// Aggregate per-crate statistics.
#[derive(Clone, Debug, Default)]
pub struct CrateStats {
    /// Total items (excluding enum variants).
    pub items: usize,
    /// Bare-`pub` items.
    pub pub_items: usize,
    /// Bare-`pub` items with docs.
    pub pub_documented: usize,
    /// Function count.
    pub fns: usize,
}

/// The assembled workspace graph.
#[derive(Debug, Default)]
pub struct SymbolGraph {
    /// Simple name -> definitions (possibly in several crates).
    pub defs: BTreeMap<String, Vec<Def>>,
    /// Crate dir name -> lib names of first-party crates it `use`s.
    pub crate_deps: BTreeMap<String, BTreeSet<String>>,
    /// Call edges, in file/source order.
    pub edges: Vec<CallEdge>,
    /// Per-crate stats.
    pub crates: BTreeMap<String, CrateStats>,
}

/// Input to the graph builder: one parsed file.
pub struct ParsedFile<'a> {
    /// Crate directory name.
    pub krate: String,
    /// Repo-relative display path.
    pub file: String,
    /// Lexed tokens (for call-site scanning).
    pub lexed: &'a Lexed,
    /// Item tree.
    pub items: &'a [Item],
}

/// Identifiers that look like calls but are control flow or builtins.
pub const NON_CALLEES: &[&str] = &[
    "if",
    "while",
    "for",
    "match",
    "loop",
    "return",
    "fn",
    "let",
    "mut",
    "ref",
    "move",
    "in",
    "as",
    "use",
    "pub",
    "impl",
    "where",
    "else",
    "break",
    "continue",
    "unsafe",
    "dyn",
    "Some",
    "None",
    "Ok",
    "Err",
    "self",
    "Self",
    "crate",
    "super",
    "vec",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "format",
    "println",
    "eprintln",
    "write",
    "writeln",
    "panic",
    "matches",
    "include_str",
    "env",
    "concat",
    "stringify",
];

impl SymbolGraph {
    /// Builds the graph from all parsed files of the workspace.
    pub fn build(files: &[ParsedFile<'_>]) -> SymbolGraph {
        let mut graph = SymbolGraph::default();
        let lib_to_dir: BTreeMap<&str, &str> =
            CRATE_LIB_NAMES.iter().map(|(d, l)| (*l, *d)).collect();

        // Pass 1: register definitions and use-edges.
        for pf in files {
            let stats = graph.crates.entry(pf.krate.clone()).or_default();
            walk_items(pf.items, &mut |item, stack| {
                if item.kind == ItemKind::Variant {
                    return;
                }
                if item.kind == ItemKind::Use {
                    let root = item.name.split(':').next().unwrap_or("");
                    if lib_to_dir.contains_key(root) && root != pf.krate {
                        graph
                            .crate_deps
                            .entry(pf.krate.clone())
                            .or_default()
                            .insert(root.to_string());
                    }
                    return;
                }
                stats.items += 1;
                if item.kind == ItemKind::Fn {
                    stats.fns += 1;
                }
                if item.vis == Vis::Pub && !item.in_test {
                    stats.pub_items += 1;
                    if item.has_doc {
                        stats.pub_documented += 1;
                    }
                }
                let qualified = qualify(stack, &item.name);
                graph.defs.entry(item.name.clone()).or_default().push(Def {
                    krate: pf.krate.clone(),
                    file: pf.file.clone(),
                    qualified,
                    kind: item.kind,
                    line: item.line,
                    is_pub: item.vis == Vis::Pub,
                    has_doc: item.has_doc,
                    in_test: item.in_test,
                });
            });
        }

        // Pass 2: call edges from fn bodies.
        for pf in files {
            walk_items(pf.items, &mut |item, stack| {
                if item.kind != ItemKind::Fn || item.in_test {
                    return;
                }
                let Some((start, end)) = item.body else { return };
                let from = format!("{}::{}", pf.krate, qualify(stack, &item.name));
                for (name, _line) in call_sites(pf.lexed, start, end) {
                    let to_crate = graph.resolve(&name, &pf.krate);
                    graph.edges.push(CallEdge {
                        from: from.clone(),
                        from_crate: pf.krate.clone(),
                        to_name: name,
                        to_crate,
                    });
                }
            });
        }
        graph
    }

    /// Resolves a callee name to a defining crate: prefer the caller's own
    /// crate, else a unique defining crate among the caller's dependencies,
    /// else a unique defining crate overall.
    fn resolve(&self, name: &str, from_crate: &str) -> Option<String> {
        let defs = self.defs.get(name)?;
        let crates: BTreeSet<&str> =
            defs.iter().filter(|d| !d.in_test).map(|d| d.krate.as_str()).collect();
        if crates.contains(from_crate) {
            return Some(from_crate.to_string());
        }
        let dep_dirs: BTreeSet<&str> = self
            .crate_deps
            .get(from_crate)
            .map(|libs| {
                CRATE_LIB_NAMES.iter().filter(|(_, l)| libs.contains(*l)).map(|(d, _)| *d).collect()
            })
            .unwrap_or_default();
        let in_deps: Vec<&&str> = crates.iter().filter(|c| dep_dirs.contains(**c)).collect();
        match in_deps.as_slice() {
            [only] => Some((**only).to_string()),
            _ if crates.len() == 1 => crates.iter().next().map(|c| (*c).to_string()),
            _ => None,
        }
    }

    /// Number of resolved edges crossing a crate boundary.
    pub fn cross_crate_edges(&self) -> usize {
        self.edges
            .iter()
            .filter(|e| e.to_crate.as_deref().is_some_and(|c| c != e.from_crate))
            .count()
    }

    /// Human-readable multi-line summary for `cargo xtask graph`.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "workspace symbol graph:");
        for (krate, stats) in &self.crates {
            let deps = self
                .crate_deps
                .get(krate)
                .map(|d| d.iter().map(String::as_str).collect::<Vec<_>>().join(", "))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "  {krate}: {} items ({} fns), {} pub ({} documented){}",
                stats.items,
                stats.fns,
                stats.pub_items,
                stats.pub_documented,
                if deps.is_empty() { String::new() } else { format!("; uses {deps}") },
            );
        }
        let resolved = self.edges.iter().filter(|e| e.to_crate.is_some()).count();
        let _ = writeln!(
            out,
            "  edges: {} call sites, {} resolved, {} cross-crate",
            self.edges.len(),
            resolved,
            self.cross_crate_edges(),
        );
        out
    }
}

/// `Container::name` when the item is nested in an impl/trait/mod.
fn qualify(stack: &[&Item], name: &str) -> String {
    let mut parts: Vec<&str> =
        stack.iter().filter(|s| !s.name.is_empty()).map(|s| s.name.as_str()).collect();
    parts.push(name);
    parts.join("::")
}

/// Extracts `(callee_name, line)` candidates from a body token range:
/// identifiers directly followed by `(`, excluding keywords/macros, plus the
/// final segment of `a::b::c(` paths.
pub fn call_sites(lexed: &Lexed, start: usize, end: usize) -> Vec<(String, usize)> {
    let toks = &lexed.toks[start..end.min(lexed.toks.len())];
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Some(id) = t.kind.ident() else { continue };
        if NON_CALLEES.contains(&id) {
            continue;
        }
        let called = toks.get(i + 1).is_some_and(|n| n.kind.is_punct("("));
        let is_macro = toks.get(i + 1).is_some_and(|n| n.kind.is_punct("!"));
        if called && !is_macro {
            out.push((id.to_string(), t.line));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::lints::mark_regions;
    use crate::parser::parse_items;

    fn parsed<'a>(krate: &str, file: &str, lexed: &'a Lexed, items: &'a [Item]) -> ParsedFile<'a> {
        ParsedFile { krate: krate.to_string(), file: file.to_string(), lexed, items }
    }

    #[test]
    fn resolves_cross_crate_calls_through_use_graph() {
        let src_pricing =
            "pub struct Money;\nimpl Money {\n    pub fn zero() -> Money { Money }\n}\n";
        let src_core =
            "use pricing::Money;\npub fn run() { let _ = zero(); helper(); }\nfn helper() {}\n";
        let lx_p = lex(src_pricing);
        let mk_p = mark_regions(&lx_p.toks);
        let it_p = parse_items(&lx_p, &mk_p);
        let lx_c = lex(src_core);
        let mk_c = mark_regions(&lx_c.toks);
        let it_c = parse_items(&lx_c, &mk_c);
        let graph = SymbolGraph::build(&[
            parsed("pricing", "crates/pricing/src/money.rs", &lx_p, &it_p),
            parsed("core", "crates/core/src/run.rs", &lx_c, &it_c),
        ]);
        // `zero` resolves to pricing (unique def, reachable via use-graph);
        // `helper` resolves within core.
        let zero = graph.edges.iter().find(|e| e.to_name == "zero").expect("zero edge");
        assert_eq!(zero.to_crate.as_deref(), Some("pricing"));
        let helper = graph.edges.iter().find(|e| e.to_name == "helper").expect("helper edge");
        assert_eq!(helper.to_crate.as_deref(), Some("core"));
        assert_eq!(graph.cross_crate_edges(), 1);
        assert!(graph.crate_deps.get("core").is_some_and(|d| d.contains("pricing")));
    }

    #[test]
    fn stats_count_pub_and_documented_items() {
        let src = "/// Doc.\npub fn a() {}\npub fn b() {}\nfn c() {}\n";
        let lx = lex(src);
        let mk = mark_regions(&lx.toks);
        let items = parse_items(&lx, &mk);
        let graph = SymbolGraph::build(&[parsed("nn", "crates/nn/src/x.rs", &lx, &items)]);
        let stats = graph.crates.get("nn").expect("nn stats");
        assert_eq!(stats.items, 3);
        assert_eq!(stats.pub_items, 2);
        assert_eq!(stats.pub_documented, 1);
        assert_eq!(stats.fns, 3);
    }

    #[test]
    fn summary_is_deterministic_and_mentions_crates() {
        let src = "pub fn a() {}\n";
        let lx = lex(src);
        let mk = mark_regions(&lx.toks);
        let items = parse_items(&lx, &mk);
        let g1 = SymbolGraph::build(&[parsed("rl", "crates/rl/src/x.rs", &lx, &items)]);
        let g2 = SymbolGraph::build(&[parsed("rl", "crates/rl/src/x.rs", &lx, &items)]);
        assert_eq!(g1.summary(), g2.summary());
        assert!(g1.summary().contains("rl:"));
    }

    #[test]
    fn test_code_is_excluded_from_edges() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { target(); }\n}\npub fn target() {}\n";
        let lx = lex(src);
        let mk = mark_regions(&lx.toks);
        let items = parse_items(&lx, &mk);
        let graph = SymbolGraph::build(&[parsed("core", "x.rs", &lx, &items)]);
        assert!(graph.edges.is_empty(), "{:?}", graph.edges);
    }
}
