//! Minimal JSON reading/writing for xtask — no external dependencies.
//!
//! Supports exactly what the diagnostics schema and the baseline file need:
//! objects (order-preserving), arrays, strings, integers, booleans, and
//! null. Numbers are kept as `i64`: every quantity in the schema (lines,
//! counts, versions) is integral, and avoiding floats keeps serialisation
//! byte-deterministic.

use std::fmt::Write as _;

/// One JSON value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integral number.
    Num(i64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; insertion order is preserved so output is deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Integer payload, if this is a number. (Schema self-tests only; the
    /// production paths build JSON, they don't read numbers back.)
    #[cfg(test)]
    pub fn as_num(&self) -> Option<i64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Bool payload, if this is a boolean. (Schema self-tests only.)
    #[cfg(test)]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parses a JSON document (must consume all non-whitespace input).
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    /// Pretty-prints with two-space indentation and a trailing newline —
    /// stable output suitable for committing.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while bytes.get(*pos).is_some_and(|b| b.is_ascii_whitespace()) {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            if bytes.get(*pos) == Some(&b'-') {
                *pos += 1;
            }
            while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
            if *pos == start || (bytes[start] == b'-' && *pos == start + 1) {
                return Err(format!("unexpected byte at {start}"));
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<i64>().map(Json::Num).map_err(|e| format!("bad number `{text}`: {e}"))
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        let c = char::from_u32(hex)
                            .ok_or_else(|| format!("bad codepoint at byte {pos}"))?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&b) => {
                out.push(b);
                *pos += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let src = r#"{"version": 1, "ok": true, "items": [{"a": "x\ny", "n": -3}], "none": null}"#;
        let v = Json::parse(src).expect("parse");
        assert_eq!(v.get("version").and_then(Json::as_num), Some(1));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        let items = v.get("items").and_then(Json::as_arr).expect("arr");
        assert_eq!(items[0].get("a").and_then(Json::as_str), Some("x\ny"));
        assert_eq!(items[0].get("n").and_then(Json::as_num), Some(-3));
        let reparsed = Json::parse(&v.render()).expect("reparse");
        assert_eq!(v, reparsed);
    }

    #[test]
    fn render_is_deterministic_and_escapes() {
        let v = Json::obj([
            ("path", Json::Str("a\\b\"c".to_string())),
            ("empty", Json::Arr(Vec::new())),
        ]);
        assert_eq!(v.render(), v.render());
        assert!(v.render().contains(r#""a\\b\"c""#), "{}", v.render());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "1.5", "\"\\q\"", "{} extra"] {
            assert!(Json::parse(bad).is_err(), "{bad} must not parse");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = Json::parse(r#""\u00e9\t""#).expect("parse");
        assert_eq!(v.as_str(), Some("é\t"));
    }
}
