//! A minimal Rust lexer for the lint pass.
//!
//! Produces identifier / punctuation / literal tokens with line numbers,
//! skipping comments, strings, chars, and lifetimes. It is deliberately not a
//! full Rust lexer: the lints only need enough structure to find method calls,
//! macro invocations, operators, and brace nesting, and to honor
//! `// xtask-allow: <lint>` escape comments.

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    /// 1-based source line the token starts on.
    pub line: usize,
    /// Token payload.
    pub kind: TokKind,
}

/// Token classes the lints care about.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// Operator / delimiter, multi-char ops joined (`->`, `::`, `+=`, ...).
    Punct(String),
    /// Numeric literal.
    Num,
    /// String, byte-string, or char literal (contents dropped).
    Lit,
}

impl TokKind {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True if this is the punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(self, TokKind::Punct(s) if s == p)
    }
}

/// An `// xtask-allow(<lints>): <reason>` escape comment (the legacy
/// `// xtask-allow: <lints>` spelling is still recognised, but lint L10
/// requires every escape to carry a justification).
#[derive(Clone, Debug)]
pub struct Allow {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// Lint names listed after the marker (comma-separated).
    pub lints: Vec<String>,
    /// Free-form justification text after the lint list; empty when the
    /// escape is bare (which L10 flags).
    pub reason: String,
}

/// An `xtask-unit` dimension declaration comment (F4 `unit-dimensions`,
/// DESIGN.md §13). Three spellings:
///
/// - `/// xtask-unit: $/GB·month` — bare; attaches to the next field,
///   const, or `let` binding below the comment,
/// - `/// xtask-unit(size_gb): GB` — names a parameter of the next `fn`,
/// - `/// xtask-unit(return): $` — the next `fn`'s return dimension.
#[derive(Clone, Debug)]
pub struct UnitDecl {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// `Some(param_name)` / `Some("return")` for the named forms, `None`
    /// for the bare form.
    pub target: Option<String>,
    /// The unit expression after the colon, trimmed (`$/GB·month`).
    pub text: String,
}

/// Lexer output: token stream plus escape comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All significant tokens in source order.
    pub toks: Vec<Tok>,
    /// All `xtask-allow` comments found anywhere in the file.
    pub allows: Vec<Allow>,
    /// All `xtask-unit` dimension declarations found anywhere in the file.
    pub units: Vec<UnitDecl>,
    /// Lines carrying an outer doc comment (`///` or the closing line of a
    /// `/** */` block), sorted ascending. Inner docs (`//!`, `/*!`) are not
    /// recorded: they document the enclosing module, not the next item.
    pub doc_lines: Vec<usize>,
}

/// Multi-character operators, longest first so greedy matching is correct.
const MULTI_OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "->", "=>", "::", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

const ALLOW_MARKER: &str = "xtask-allow";

const UNIT_MARKER: &str = "xtask-unit";

/// Splits a comma-separated lint list, keeping each segment's leading
/// lint-name token and returning any trailing free-form text of the last
/// segment as commentary.
fn split_lint_list(list: &str) -> (Vec<String>, String) {
    let mut lints = Vec::new();
    let mut trailing = String::new();
    for seg in list.split(',') {
        let seg = seg.trim();
        let name: String =
            seg.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '-').collect();
        if !name.is_empty() {
            lints.push(name.clone());
        }
        trailing = seg[name.len()..].trim().to_string();
    }
    (lints, trailing)
}

fn record_allow(comment: &str, line: usize, allows: &mut Vec<Allow>) {
    let Some(pos) = comment.find(ALLOW_MARKER) else { return };
    let rest = &comment[pos + ALLOW_MARKER.len()..];
    // Preferred grammar: `xtask-allow(<lints>): <reason>`.
    if let Some(body) = rest.strip_prefix('(') {
        let Some(close) = body.find(')') else { return };
        let (lints, _) = split_lint_list(&body[..close]);
        let reason =
            body[close + 1..].trim_start().strip_prefix(':').map(str::trim).unwrap_or_default();
        allows.push(Allow { line, lints, reason: reason.to_string() });
    } else if let Some(body) = rest.strip_prefix(':') {
        // Legacy grammar: `xtask-allow: <lints> [commentary]` — commentary
        // after the last lint name counts as the justification.
        let (lints, reason) = split_lint_list(body);
        allows.push(Allow { line, lints, reason });
    }
}

/// Records an `xtask-unit` declaration: `xtask-unit: <unit>` (bare) or
/// `xtask-unit(<name>): <unit>` (parameter / `return` of the next fn).
fn record_unit(comment: &str, line: usize, units: &mut Vec<UnitDecl>) {
    let Some(pos) = comment.find(UNIT_MARKER) else { return };
    let rest = &comment[pos + UNIT_MARKER.len()..];
    if let Some(body) = rest.strip_prefix('(') {
        let Some(close) = body.find(')') else { return };
        let target = body[..close].trim().to_string();
        let Some(text) = body[close + 1..].trim_start().strip_prefix(':') else { return };
        if !target.is_empty() && !text.trim().is_empty() {
            units.push(UnitDecl { line, target: Some(target), text: text.trim().to_string() });
        }
    } else if let Some(text) = rest.strip_prefix(':') {
        if !text.trim().is_empty() {
            units.push(UnitDecl { line, target: None, text: text.trim().to_string() });
        }
    }
}

/// Lexes `src` into tokens and escape comments.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0;
    let mut line = 1;

    macro_rules! bump_lines {
        ($range:expr) => {
            line += bytes[$range].iter().filter(|&&b| b == b'\n').count()
        };
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = src[i..].find('\n').map_or(bytes.len(), |p| i + p);
                let comment = &src[i..end];
                if comment.starts_with("///") {
                    out.doc_lines.push(line);
                }
                record_allow(comment, line, &mut out.allows);
                record_unit(comment, line, &mut out.units);
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                let comment = &src[start..i];
                if comment.starts_with("/**") && !comment.starts_with("/**/") {
                    // Record the block's *closing* line so the "doc directly
                    // above the item" adjacency check works for multi-line
                    // block docs too.
                    out.doc_lines.push(line);
                }
                record_allow(comment, start_line, &mut out.allows);
                record_unit(comment, start_line, &mut out.units);
            }
            b'"' => {
                let tok_line = line;
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                out.toks.push(Tok { line: tok_line, kind: TokKind::Lit });
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                let tok_line = line;
                // Skip prefix letters to the hashes/quote.
                let mut j = i;
                while bytes[j] == b'r' || bytes[j] == b'b' {
                    j += 1;
                }
                let hashes = bytes[j..].iter().take_while(|&&b| b == b'#').count();
                j += hashes + 1; // past opening quote
                let closer: Vec<u8> =
                    std::iter::once(b'"').chain(std::iter::repeat_n(b'#', hashes)).collect();
                let end = find_subslice(&bytes[j..], &closer).map_or(bytes.len(), |p| j + p);
                bump_lines!(i..end.min(bytes.len()));
                i = (end + closer.len()).min(bytes.len());
                out.toks.push(Tok { line: tok_line, kind: TokKind::Lit });
            }
            b'\'' => {
                // Char literal or lifetime.
                let tok_line = line;
                if is_char_literal(bytes, i) {
                    i += 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            b'\\' => i += 2,
                            b'\'' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    out.toks.push(Tok { line: tok_line, kind: TokKind::Lit });
                } else {
                    // Lifetime: skip quote + identifier.
                    i += 1;
                    while i < bytes.len() && is_ident_char(bytes[i]) {
                        i += 1;
                    }
                }
            }
            c if c.is_ascii_digit() => {
                let tok_line = line;
                while i < bytes.len()
                    && (is_ident_char(bytes[i])
                        || bytes[i] == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit))
                {
                    i += 1;
                }
                out.toks.push(Tok { line: tok_line, kind: TokKind::Num });
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < bytes.len() && is_ident_char(bytes[i]) {
                    i += 1;
                }
                // `b"..."` / `r"..."` handled above; here it is a plain ident.
                out.toks.push(Tok { line, kind: TokKind::Ident(src[start..i].to_string()) });
            }
            _ => {
                let rest = &src[i..];
                let op = MULTI_OPS.iter().find(|op| rest.starts_with(**op));
                let text = op.map_or(&src[i..i + b.len_utf8_at()], |op| *op);
                out.toks.push(Tok { line, kind: TokKind::Punct(text.to_string()) });
                i += text.len();
            }
        }
    }
    out
}

trait Utf8LenAt {
    fn len_utf8_at(&self) -> usize;
}

impl Utf8LenAt for u8 {
    fn len_utf8_at(&self) -> usize {
        // Continuation bytes never start a token here; treat any lead byte's
        // full sequence length, defaulting to 1.
        match self {
            0x00..=0x7F => 1,
            0xC0..=0xDF => 2,
            0xE0..=0xEF => 3,
            _ => 4,
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// True when the `r`/`b` at `i` starts a raw or byte string literal.
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    let mut saw_r = false;
    while j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') {
        saw_r |= bytes[j] == b'r';
        j += 1;
        if j - i > 2 {
            return false;
        }
    }
    if j < bytes.len() && bytes[j] == b'"' {
        // b"..." plain byte string is handled fine by the raw scanner only
        // when there are hashes; route plain b"..." here too (no escapes with
        // raw, but byte strings do allow escapes — accept the imprecision:
        // only `r`-prefixed forms skip escape handling).
        return saw_r || bytes[i] == b'b';
    }
    saw_r && j < bytes.len() && bytes[j] == b'#'
}

/// True when the `'` at `i` opens a char literal rather than a lifetime.
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(b'\\') => true,
        Some(&c) if is_ident_start(c) => bytes.get(i + 2) == Some(&b'\''),
        Some(_) => true,
        None => false,
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn skips_comments_and_strings() {
        let src = r#"
            // unwrap in comment
            /* panic! in block */
            let s = "unwrap() inside string";
            let c = 'x';
            let r = r"raw unwrap";
            real_ident();
        "#;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let ids = idents(src);
        assert!(ids.contains(&"str".to_string()));
        // The arrow must be one token so `)` -> `->` is not read as minus.
        assert!(lex(src).toks.iter().any(|t| t.kind.is_punct("->")));
    }

    #[test]
    fn multi_char_ops_are_joined() {
        let lexed = lex("a += b; c::d(); e -> f");
        assert!(lexed.toks.iter().any(|t| t.kind.is_punct("+=")));
        assert!(lexed.toks.iter().any(|t| t.kind.is_punct("::")));
        assert!(!lexed.toks.iter().any(|t| t.kind.is_punct("+")));
    }

    #[test]
    fn allow_comments_are_collected() {
        let src = "let x = 1; // xtask-allow: money-safety, no-panic-in-libs\nlet y = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].line, 1);
        assert_eq!(lexed.allows[0].lints, vec!["money-safety", "no-panic-in-libs"]);
        assert!(lexed.allows[0].reason.is_empty(), "bare escape carries no reason");
    }

    #[test]
    fn justified_allow_grammar_records_reason() {
        let src = "x(); // xtask-allow(no-panic-in-libs): config validation is fail-fast\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].lints, vec!["no-panic-in-libs"]);
        assert_eq!(lexed.allows[0].reason, "config validation is fail-fast");
    }

    #[test]
    fn justified_allow_grammar_takes_multiple_lints() {
        let src = "y(); // xtask-allow(money-safety, narrowing-cast-audit): report-only path\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows[0].lints, vec!["money-safety", "narrowing-cast-audit"]);
        assert_eq!(lexed.allows[0].reason, "report-only path");
    }

    #[test]
    fn legacy_allow_trailing_commentary_counts_as_reason() {
        let src = "z(); // xtask-allow: exhaustive-tier-match (any colder tier is \"not hot\")\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows[0].lints, vec!["exhaustive-tier-match"]);
        assert!(lexed.allows[0].reason.contains("colder tier"), "{:?}", lexed.allows[0]);
    }

    #[test]
    fn bare_unit_decls_are_collected() {
        let src = "/// Monthly storage price.\n/// xtask-unit: $/GB\u{b7}month\npub storage_gb_month: f64,\n";
        let lexed = lex(src);
        assert_eq!(lexed.units.len(), 1);
        assert_eq!(lexed.units[0].line, 2);
        assert_eq!(lexed.units[0].target, None);
        assert_eq!(lexed.units[0].text, "$/GB\u{b7}month");
    }

    #[test]
    fn named_unit_decls_carry_their_target() {
        let src = "/// xtask-unit(size_gb): GB\n/// xtask-unit(return): $\nfn f(size_gb: f64) {}\n";
        let lexed = lex(src);
        assert_eq!(lexed.units.len(), 2);
        assert_eq!(lexed.units[0].target.as_deref(), Some("size_gb"));
        assert_eq!(lexed.units[0].text, "GB");
        assert_eq!(lexed.units[1].target.as_deref(), Some("return"));
        assert_eq!(lexed.units[1].text, "$");
    }

    #[test]
    fn malformed_unit_decls_are_ignored() {
        let src = "/// xtask-unit:\n/// xtask-unit(): GB\n/// xtask-unit(x)\nlet y = 1;\n";
        assert!(lex(src).units.is_empty());
    }

    #[test]
    fn doc_lines_recorded_for_outer_docs_only() {
        let src = "//! module doc\n/// item doc\nfn f() {}\n/** block\ndoc */\nfn g() {}\n// plain\nfn h() {}\n";
        let lexed = lex(src);
        // `///` on line 2; `/** */` closes on line 5. `//!` and `//` ignored.
        assert_eq!(lexed.doc_lines, vec![2, 5]);
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let s = \"a\nb\nc\";\nafter();";
        let lexed = lex(src);
        let after =
            lexed.toks.iter().find(|t| t.kind.ident() == Some("after")).expect("after token");
        assert_eq!(after.line, 4);
    }
}
