//! The MiniCost-specific lints (L1–L4 token lints, L10 escape hygiene;
//! L5–L9 live in [`crate::syntax_lints`]).
//!
//! Each lint walks the token stream from [`crate::lexer::lex`] with brace-depth
//! and `#[cfg(test)]`-region tracking. Violations carry `file:line` positions
//! and can be suppressed with `// xtask-allow(<lint>): <reason>` on the
//! offending line or the line above (L10 requires the reason).

use crate::lexer::{lex, Lexed, Tok, TokKind};
use std::fmt;
use std::path::Path;

/// The lint that produced a violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lint {
    /// L1: raw f64 arithmetic on dollar quantities outside `crates/pricing`.
    MoneySafety,
    /// L2: `unwrap`/`expect`/`panic!` in library-crate non-test code.
    NoPanicInLibs,
    /// L3: entropy-seeded RNG construction outside test code.
    SeededRngOnly,
    /// L4: mutex guards held across spawns or long loops.
    LockDiscipline,
    /// L5: iterating a `HashMap`/`HashSet` outside tests/bins.
    HashmapIterDeterminism,
    /// L6: float reductions over unordered iterators in `nn`/`rl`.
    FloatReductionOrder,
    /// L7: `as` casts that can truncate counters/sizes/indices.
    NarrowingCastAudit,
    /// L8: `_` wildcard arms in matches over `Tier` patterns.
    ExhaustiveTierMatch,
    /// L9: undocumented `pub` items in library crates.
    PubApiDocCoverage,
    /// L10: escape-hatch comments without a justification reason.
    EscapeJustification,
}

impl Lint {
    /// The name used in diagnostics and `xtask-allow` comments.
    pub fn name(self) -> &'static str {
        match self {
            Lint::MoneySafety => "money-safety",
            Lint::NoPanicInLibs => "no-panic-in-libs",
            Lint::SeededRngOnly => "seeded-rng-only",
            Lint::LockDiscipline => "lock-discipline",
            Lint::HashmapIterDeterminism => "hashmap-iter-determinism",
            Lint::FloatReductionOrder => "float-reduction-order",
            Lint::NarrowingCastAudit => "narrowing-cast-audit",
            Lint::ExhaustiveTierMatch => "exhaustive-tier-match",
            Lint::PubApiDocCoverage => "pub-api-doc-coverage",
            Lint::EscapeJustification => "escape-hatch-justification",
        }
    }

    /// All lints, in diagnostic order.
    pub fn all() -> [Lint; 10] {
        [
            Lint::MoneySafety,
            Lint::NoPanicInLibs,
            Lint::SeededRngOnly,
            Lint::LockDiscipline,
            Lint::HashmapIterDeterminism,
            Lint::FloatReductionOrder,
            Lint::NarrowingCastAudit,
            Lint::ExhaustiveTierMatch,
            Lint::PubApiDocCoverage,
            Lint::EscapeJustification,
        ]
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint finding at a source position.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which lint fired.
    pub lint: Lint,
    /// Path as given to the scanner.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.lint, self.message)
    }
}

/// What part of the workspace a file belongs to, for lint scoping.
#[derive(Clone, Debug)]
pub struct FileContext {
    /// Crate directory name (`pricing`, `rl`, ...; `fixture` for fixtures).
    pub crate_name: String,
    /// True for `src/bin/` targets (CLI code, exempt from L2).
    pub is_bin: bool,
}

impl FileContext {
    /// Derives the context from a repo-relative path like
    /// `crates/rl/src/a3c.rs`.
    pub fn from_path(path: &Path) -> FileContext {
        let comps: Vec<&str> = path.iter().map(|c| c.to_str().unwrap_or_default()).collect();
        let crate_name = if comps.contains(&"fixtures") {
            // Lint fixtures exercise every lint regardless of location.
            "fixture".to_string()
        } else {
            comps
                .iter()
                .position(|&c| c == "crates")
                .and_then(|i| comps.get(i + 1))
                .map_or_else(|| "fixture".to_string(), |s| (*s).to_string())
        };
        let is_bin = comps.windows(2).any(|w| w == ["src", "bin"]);
        FileContext { crate_name, is_bin }
    }

    fn lint_applies(&self, lint: Lint) -> bool {
        const LIB_CRATES: [&str; 6] = ["pricing", "trace", "forecast", "nn", "rl", "core"];
        let in_lib = LIB_CRATES.contains(&self.crate_name.as_str()) && !self.is_bin
            || self.crate_name == "fixture";
        match lint {
            // Pricing owns dollar<->micro conversion; bench code is exempt.
            Lint::MoneySafety => self.crate_name != "pricing" && self.crate_name != "bench",
            Lint::NoPanicInLibs => in_lib,
            Lint::SeededRngOnly => true,
            Lint::LockDiscipline => {
                matches!(self.crate_name.as_str(), "rl" | "core" | "fixture")
            }
            // Bit-determinism of the A3C audit: any unordered iteration in a
            // library crate can leak into reward accounting.
            Lint::HashmapIterDeterminism => in_lib,
            // Gradient/reward reduction paths live in nn and rl.
            Lint::FloatReductionOrder => {
                matches!(self.crate_name.as_str(), "nn" | "rl" | "fixture")
            }
            // Op counters, byte sizes, and tick indices live in these crates.
            Lint::NarrowingCastAudit => {
                matches!(self.crate_name.as_str(), "core" | "pricing" | "trace" | "fixture")
                    && !self.is_bin
            }
            Lint::ExhaustiveTierMatch => true,
            Lint::PubApiDocCoverage => in_lib,
            // Escapes are loans everywhere — bins, benches, and fixtures too.
            Lint::EscapeJustification => true,
        }
    }
}

/// A loop body spanning at least this many lines counts as "long" for L4.
const LONG_LOOP_LINES: usize = 8;

/// Runs every applicable lint over one file's source.
pub fn scan_source(path: &Path, src: &str, ctx: &FileContext) -> Vec<Violation> {
    let lexed = lex(src);
    let marks = mark_regions(&lexed.toks);
    let items = crate::parser::parse_items(&lexed, &marks);
    let mut out = Vec::new();
    for lint in Lint::all() {
        if !ctx.lint_applies(lint) {
            continue;
        }
        let raw = match lint {
            Lint::MoneySafety => lint_money_safety(&lexed.toks, &marks),
            Lint::NoPanicInLibs => lint_no_panic(&lexed.toks, &marks),
            Lint::SeededRngOnly => lint_seeded_rng(&lexed.toks, &marks),
            Lint::LockDiscipline => lint_lock_discipline(&lexed.toks, &marks),
            Lint::HashmapIterDeterminism => {
                crate::syntax_lints::lint_hashmap_iter(&lexed.toks, &marks, &items)
            }
            Lint::FloatReductionOrder => {
                crate::syntax_lints::lint_float_reduction(&lexed.toks, &marks, &items)
            }
            Lint::NarrowingCastAudit => {
                crate::syntax_lints::lint_narrowing_cast(&lexed.toks, &marks)
            }
            Lint::ExhaustiveTierMatch => crate::syntax_lints::lint_tier_match(&lexed.toks, &marks),
            Lint::PubApiDocCoverage => crate::syntax_lints::lint_pub_doc(&items),
            Lint::EscapeJustification => lint_escape_justification(&lexed),
        };
        for (line, message) in raw {
            if allowed(&lexed, lint, line) {
                continue;
            }
            out.push(Violation { lint, file: path.display().to_string(), line, message });
        }
    }
    out.sort_by_key(|v| v.line);
    out
}

/// True if an `xtask-allow` comment covers `lint` at `line` (same line or the
/// line directly above). L10 itself can only be suppressed by a *justified*
/// escape — otherwise a bare `xtask-allow: all` would grant itself amnesty.
fn allowed(lexed: &Lexed, lint: Lint, line: usize) -> bool {
    lexed.allows.iter().any(|a| {
        (a.line == line || a.line + 1 == line)
            && a.lints.iter().any(|l| l == lint.name() || l == "all")
            && (lint != Lint::EscapeJustification || !a.reason.is_empty())
    })
}

/// L10: every `xtask-allow` escape comment must carry a justification —
/// `// xtask-allow(<lint>): <reason>`. Suppressions are loans; the reason is
/// the loan paperwork.
fn lint_escape_justification(lexed: &Lexed) -> Vec<(usize, String)> {
    lexed
        .allows
        .iter()
        .filter(|a| a.reason.is_empty())
        .map(|a| {
            (
                a.line,
                format!(
                    "escape hatch for `{}` has no justification; write \
                     `// xtask-allow({}): <reason>`",
                    a.lints.join(", "),
                    a.lints.join(", "),
                ),
            )
        })
        .collect()
}

/// Per-token context: brace depth and whether the token is inside test code.
pub struct Marks {
    pub depth: Vec<usize>,
    pub in_test: Vec<bool>,
}

/// Computes brace depth and `#[cfg(test)]` / `#[test]` regions per token.
pub fn mark_regions(toks: &[Tok]) -> Marks {
    let mut depth = 0usize;
    let mut depths = Vec::with_capacity(toks.len());
    let mut in_test = Vec::with_capacity(toks.len());
    // Depths at which a test-scoped `{` was opened.
    let mut test_stack: Vec<usize> = Vec::new();
    // An attribute mentioning `test` was seen; the next `{` (before any `;`
    // at attribute depth) opens a test region.
    let mut pending_test_attr = false;

    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        depths.push(depth);
        in_test.push(!test_stack.is_empty());
        match &t.kind {
            TokKind::Punct(p) => match p.as_str() {
                "{" => {
                    if pending_test_attr {
                        test_stack.push(depth);
                        pending_test_attr = false;
                    }
                    depth += 1;
                }
                "}" => {
                    depth = depth.saturating_sub(1);
                    if test_stack.last() == Some(&depth) {
                        test_stack.pop();
                    }
                }
                ";" => pending_test_attr = false,
                "#" if toks.get(i + 1).is_some_and(|t| t.kind.is_punct("[")) => {
                    // Scan the attribute's bracket group for `test`.
                    let mut j = i + 1;
                    let mut bracket = 0usize;
                    let mut has_test = false;
                    while let Some(tok) = toks.get(j) {
                        match &tok.kind {
                            TokKind::Punct(q) if q == "[" => bracket += 1,
                            TokKind::Punct(q) if q == "]" => {
                                bracket -= 1;
                                if bracket == 0 {
                                    break;
                                }
                            }
                            TokKind::Ident(id) if id == "test" => has_test = true,
                            _ => {}
                        }
                        j += 1;
                    }
                    if has_test {
                        pending_test_attr = true;
                    }
                    // Re-push marks for skipped attribute tokens.
                    for _ in i + 1..=j.min(toks.len().saturating_sub(1)) {
                        depths.push(depth);
                        in_test.push(!test_stack.is_empty());
                    }
                    i = j;
                }
                _ => {}
            },
            TokKind::Ident(_) | TokKind::Num | TokKind::Lit => {}
        }
        i += 1;
    }
    Marks { depth: depths, in_test }
}

fn is_arith(kind: &TokKind) -> bool {
    matches!(kind, TokKind::Punct(p)
        if matches!(p.as_str(), "+" | "-" | "*" | "/" | "+=" | "-=" | "*=" | "/="))
}

fn is_value_end(kind: &TokKind) -> bool {
    matches!(kind, TokKind::Ident(_) | TokKind::Num)
        || matches!(kind, TokKind::Punct(p) if p == ")" || p == "]")
}

/// Skips a balanced paren group starting at `toks[i]` (which must be `(`);
/// returns the index just past the matching `)`.
fn skip_parens(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while let Some(t) = toks.get(j) {
        if t.kind.is_punct("(") {
            depth += 1;
        } else if t.kind.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

fn is_dollar_ident(id: &str) -> bool {
    let lower = id.to_ascii_lowercase();
    lower.contains("dollar") || lower.contains("usd")
}

/// L1: flags raw float arithmetic on dollar-named values and
/// `as_dollars` -> `from_dollars` round-trips outside `crates/pricing`.
fn lint_money_safety(toks: &[Tok], marks: &Marks) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if marks.in_test[i] {
            continue;
        }
        let Some(id) = t.kind.ident() else { continue };
        if !is_dollar_ident(id) {
            continue;
        }
        // `dollars + x`, `x * cost_usd`, `m.as_dollars() / n`, ...
        // `from_dollars(..)` is exempt from the call-result rule: it returns
        // `Money`, so arithmetic on its result is Money arithmetic.
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.kind.is_punct("(")) {
            if id == "from_dollars" {
                j = usize::MAX;
            } else {
                j = skip_parens(toks, j);
            }
        }
        let after_op = toks.get(j).is_some_and(|t| is_arith(&t.kind));
        let before_op = i >= 2 && is_arith(&toks[i - 1].kind) && is_value_end(&toks[i - 2].kind);
        if after_op || before_op {
            out.push((
                t.line,
                format!(
                    "raw f64 arithmetic on dollar value `{id}`; do the math in \
                     `Money` micros (crates/pricing) instead"
                ),
            ));
        }
        // `Money::from_dollars(x.as_dollars() * k)` style round-trips: both
        // conversions inside one statement.
        if id == "from_dollars" {
            let stmt_end =
                toks[i..].iter().position(|t| t.kind.is_punct(";")).map_or(toks.len(), |p| i + p);
            let stmt_start = toks[..i]
                .iter()
                .rposition(|t| t.kind.is_punct(";") || t.kind.is_punct("{") || t.kind.is_punct("}"))
                .map_or(0, |p| p + 1);
            if toks[stmt_start..stmt_end].iter().any(|t| t.kind.ident() == Some("as_dollars")) {
                out.push((
                    t.line,
                    "as_dollars()->from_dollars round-trip loses sub-micro precision; \
                     stay in Money micros"
                        .to_string(),
                ));
            }
        }
    }
    out
}

/// L2: flags `.unwrap()`, `.expect(...)`, and `panic!` in non-test code.
fn lint_no_panic(toks: &[Tok], marks: &Marks) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if marks.in_test[i] {
            continue;
        }
        let Some(id) = t.kind.ident() else { continue };
        match id {
            "unwrap" | "expect" => {
                let method_call = i >= 1
                    && toks[i - 1].kind.is_punct(".")
                    && toks.get(i + 1).is_some_and(|t| t.kind.is_punct("("));
                if method_call {
                    out.push((
                        t.line,
                        format!("`.{id}()` in library code; return a Result or restructure"),
                    ));
                }
            }
            "panic" if toks.get(i + 1).is_some_and(|t| t.kind.is_punct("!")) => {
                out.push((
                    t.line,
                    "`panic!` in library code; return a Result or restructure".to_string(),
                ));
            }
            _ => {}
        }
    }
    out
}

/// L3: flags entropy-seeded RNG construction outside test code.
fn lint_seeded_rng(toks: &[Tok], marks: &Marks) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if marks.in_test[i] {
            continue;
        }
        let Some(id) = t.kind.ident() else { continue };
        let flagged = match id {
            "thread_rng" | "from_entropy" | "from_os_rng" | "OsRng" => true,
            // Bare `rand::rng()`.
            "rng" => {
                i >= 2
                    && toks[i - 1].kind.is_punct("::")
                    && toks[i - 2].kind.ident() == Some("rand")
                    && toks.get(i + 1).is_some_and(|t| t.kind.is_punct("("))
            }
            _ => false,
        };
        if flagged {
            out.push((
                t.line,
                format!(
                    "entropy-seeded RNG `{id}` breaks reproducibility; use \
                     `StdRng::seed_from_u64` with a config-derived seed"
                ),
            ));
        }
    }
    out
}

/// An active mutex guard being tracked by L4.
struct Guard {
    name: String,
    line: usize,
    depth: usize,
}

/// L4: flags `let g = x.lock()` guards that stay live across a `spawn`/
/// `thread::scope` call or a loop body of [`LONG_LOOP_LINES`]+ lines.
fn lint_lock_discipline(toks: &[Tok], marks: &Marks) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if marks.in_test[i] {
            i += 1;
            continue;
        }
        // Close guards whose scope ended.
        guards.retain(|g| marks.depth[i] >= g.depth);
        match t.kind.ident() {
            Some("let") => {
                // Skip `if let` / `while let` (pattern scrutinees, not guards).
                let after_branch_kw =
                    i >= 1 && matches!(toks[i - 1].kind.ident(), Some("if" | "while"));
                if !after_branch_kw {
                    if let Some(g) = parse_guard_binding(toks, i, marks.depth[i]) {
                        guards.push(g);
                        // Jump past the binding statement so `.lock()` inside
                        // it is not re-examined.
                        while i < toks.len() && !toks[i].kind.is_punct(";") {
                            i += 1;
                        }
                    }
                }
            }
            Some("drop") if toks.get(i + 1).is_some_and(|t| t.kind.is_punct("(")) => {
                if let Some(TokKind::Ident(name)) = toks.get(i + 2).map(|t| &t.kind) {
                    guards.retain(|g| &g.name != name);
                }
            }
            Some("spawn" | "scope") if !guards.is_empty() => {
                let is_call = toks.get(i + 1).is_some_and(|t| t.kind.is_punct("("));
                if is_call {
                    for g in &guards {
                        out.push((
                            t.line,
                            format!(
                                "mutex guard `{}` (acquired line {}) is held across \
                                 `{}`; scope the lock or clone the data first",
                                g.name,
                                g.line,
                                t.kind.ident().unwrap_or_default(),
                            ),
                        ));
                    }
                    guards.clear(); // one report per guard
                }
            }
            Some("for" | "while" | "loop") if !guards.is_empty() => {
                if let Some(span) = loop_body_line_span(toks, i) {
                    if span >= LONG_LOOP_LINES {
                        for g in &guards {
                            out.push((
                                t.line,
                                format!(
                                    "mutex guard `{}` (acquired line {}) is held across a \
                                     {span}-line loop; narrow the critical section",
                                    g.name, g.line,
                                ),
                            ));
                        }
                        guards.clear();
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Parses `let [mut] NAME ... = ... .lock() ... ;` starting at the `let`.
fn parse_guard_binding(toks: &[Tok], let_idx: usize, depth: usize) -> Option<Guard> {
    let mut j = let_idx + 1;
    if toks.get(j)?.kind.ident() == Some("mut") {
        j += 1;
    }
    let name = toks.get(j)?.kind.ident()?.to_string();
    // Scan the statement for `.lock()`.
    let mut k = j;
    while let Some(t) = toks.get(k) {
        if t.kind.is_punct(";") {
            return None;
        }
        if t.kind.ident() == Some("lock")
            && k >= 1
            && toks[k - 1].kind.is_punct(".")
            && toks.get(k + 1).is_some_and(|t| t.kind.is_punct("("))
        {
            return Some(Guard { name, line: toks[let_idx].line, depth });
        }
        k += 1;
    }
    None
}

/// Line span of the loop body block following the loop keyword at `kw_idx`.
fn loop_body_line_span(toks: &[Tok], kw_idx: usize) -> Option<usize> {
    // Find the body `{`: the first `{` after the keyword at paren depth 0.
    let mut j = kw_idx + 1;
    let mut paren = 0usize;
    let open = loop {
        let t = toks.get(j)?;
        match &t.kind {
            TokKind::Punct(p) if p == "(" || p == "[" => paren += 1,
            TokKind::Punct(p) if p == ")" || p == "]" => paren = paren.saturating_sub(1),
            TokKind::Punct(p) if p == "{" && paren == 0 => break j,
            TokKind::Punct(p) if p == ";" => return None,
            _ => {}
        }
        j += 1;
    };
    let mut brace = 0usize;
    let mut k = open;
    while let Some(t) = toks.get(k) {
        if t.kind.is_punct("{") {
            brace += 1;
        } else if t.kind.is_punct("}") {
            brace -= 1;
            if brace == 0 {
                return Some(toks[k].line - toks[open].line + 1);
            }
        }
        k += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scan(src: &str, crate_name: &str) -> Vec<Violation> {
        let ctx = FileContext { crate_name: crate_name.to_string(), is_bin: false };
        scan_source(&PathBuf::from("mem.rs"), src, &ctx)
    }

    #[test]
    fn l1_flags_dollar_arithmetic_outside_pricing() {
        let src = "fn f(total_dollars: f64, rate: f64) -> f64 { total_dollars * rate }";
        let v = scan(src, "core");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].lint, Lint::MoneySafety);
    }

    #[test]
    fn l1_is_silent_inside_pricing() {
        let src = "fn f(d: f64) -> f64 { let dollars = d; dollars * 2.0 }";
        assert!(scan(src, "pricing").is_empty());
    }

    #[test]
    fn l1_flags_round_trip() {
        let src = "fn f(m: Money) -> Money { Money::from_dollars(m.as_dollars()) }";
        let v = scan(src, "core");
        assert!(v.iter().any(|v| v.message.contains("round-trip")), "{v:?}");
    }

    #[test]
    fn l2_flags_unwrap_outside_tests() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        let v = scan(src, "rl");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, Lint::NoPanicInLibs);
    }

    #[test]
    fn l2_ignores_test_modules() {
        let src = r"
            fn ok() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1).unwrap(); panic!(); }
            }
        ";
        assert!(scan(src, "rl").is_empty());
    }

    #[test]
    fn l2_not_fooled_by_unwrap_or() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }";
        assert!(scan(src, "rl").is_empty());
    }

    #[test]
    fn l3_flags_thread_rng() {
        let src = "fn f() -> f64 { let mut r = thread_rng(); r.random() }";
        let v = scan(src, "trace");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, Lint::SeededRngOnly);
    }

    #[test]
    fn l3_flags_rand_rng_call() {
        let src = "fn f() -> f64 { rand::rng().random() }";
        let v = scan(src, "trace");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn l3_allows_seeded_construction() {
        let src = "fn f() { let _ = StdRng::seed_from_u64(7); }";
        assert!(scan(src, "trace").is_empty());
    }

    #[test]
    fn l4_flags_guard_across_spawn() {
        let src = r"
            fn f(m: &Mutex<u8>) {
                let g = m.lock();
                std::thread::scope(|s| { s.spawn(|| work(&g)); });
            }
        ";
        let v = scan(src, "rl");
        assert!(!v.is_empty());
        assert_eq!(v[0].lint, Lint::LockDiscipline);
    }

    #[test]
    fn l4_ignores_short_critical_sections() {
        let src = r"
            fn f(m: &Mutex<Vec<u8>>) {
                let mut g = m.lock();
                g.push(1);
            }
        ";
        assert!(scan(src, "rl").is_empty());
    }

    #[test]
    fn l4_flags_guard_across_long_loop() {
        let src = r"
            fn f(m: &Mutex<u8>) {
                let g = m.lock();
                for i in 0..10 {
                    a();
                    b();
                    c();
                    d();
                    e();
                    h();
                    j();
                }
                use_it(&g);
            }
        ";
        let v = scan(src, "core");
        assert!(v.iter().any(|v| v.message.contains("loop")), "{v:?}");
    }

    #[test]
    fn l4_respects_drop() {
        let src = r"
            fn f(m: &Mutex<u8>) {
                let g = m.lock();
                drop(g);
                std::thread::scope(|s| { s.spawn(work); });
            }
        ";
        assert!(scan(src, "rl").is_empty());
    }

    #[test]
    fn allow_comment_suppresses_same_line() {
        let src =
            "fn f(x: Option<u8>) -> u8 { x.unwrap() } // xtask-allow(no-panic-in-libs): test shim";
        assert!(scan(src, "rl").is_empty());
    }

    #[test]
    fn allow_comment_suppresses_next_line() {
        let src =
            "// xtask-allow(seeded-rng-only): exploratory tool\nfn f() { let _ = thread_rng(); }";
        assert!(scan(src, "trace").is_empty());
    }

    #[test]
    fn allow_for_other_lint_does_not_suppress() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // xtask-allow(money-safety): n/a";
        assert_eq!(scan(src, "rl").iter().filter(|v| v.lint == Lint::NoPanicInLibs).count(), 1);
    }

    #[test]
    fn l10_flags_bare_escape_hatches() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // xtask-allow: no-panic-in-libs";
        let v = scan(src, "rl");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].lint, Lint::EscapeJustification);
        assert!(v[0].message.contains("no-panic-in-libs"), "{v:?}");
    }

    #[test]
    fn l10_accepts_justified_escapes_both_grammars() {
        let new_style =
            "fn f(x: Option<u8>) -> u8 { x.unwrap() } // xtask-allow(no-panic-in-libs): shim";
        assert!(scan(new_style, "rl").is_empty());
        let legacy =
            "fn f(x: u64) -> u32 { x as u32 } // xtask-allow: narrowing-cast-audit (bounded)";
        assert!(scan(legacy, "core").is_empty());
    }

    #[test]
    fn l10_cannot_be_suppressed_by_a_bare_escape() {
        let src = "fn f() {} // xtask-allow: all";
        let v = scan(src, "rl");
        assert_eq!(v.len(), 1, "bare `all` must not grant itself amnesty: {v:?}");
        assert_eq!(v[0].lint, Lint::EscapeJustification);
    }
}
