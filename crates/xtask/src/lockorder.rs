//! F3 `lock-order`: lock acquisition orderings must be acyclic.
//!
//! The analysis extracts, per function, which locks are acquired while
//! another is held, then closes over the call graph (a call made while a
//! guard is live acquires everything its callee transitively locks). Locks
//! are identified by field/binding name — the identifier before `.lock()`
//! (`self.actor.lock()` acquires `actor`) — which is exact for the
//! workspace's style of named mutex fields. Held-while-acquired pairs come
//! from two shapes:
//!
//! - a `let`-bound guard live in scope when another `.lock()` runs (scoped
//!   by brace depth, like lint L4's guard tracking),
//! - two `.lock()` temporaries in one statement (both alive until the
//!   statement's end: `f(a.lock(), b.lock())` orders `a` before `b`).
//!
//! Every cycle in the resulting ordering graph is reported once, with one
//! example acquisition site per edge. A justified
//! `// xtask-allow(lock-order): <reason>` on the second acquisition
//! suppresses that edge.

use crate::flow::{flow_allowed, FlowDiag, FlowKind, FnGraph, Workspace};
use crate::lexer::TokKind;
use std::collections::{BTreeMap, BTreeSet};

/// One `A` -> `B` observation: where `B` was acquired while `A` was held.
#[derive(Clone, Debug)]
struct EdgeSite {
    /// Function the acquisition happened in.
    node: usize,
    /// 1-based line of the second acquisition (or the call that performs it).
    line: usize,
}

/// Per-function extraction results.
#[derive(Debug, Default)]
struct FnLocks {
    /// Locks this body acquires directly.
    own: BTreeSet<String>,
    /// Direct held-while-acquired pairs, with their site.
    pairs: Vec<(String, String, usize)>,
    /// Calls made while locks were held: (held locks, callee node, line).
    held_calls: Vec<(BTreeSet<String>, usize, usize)>,
}

/// Scans one function body for acquisitions, guard scopes, and held calls.
fn scan_fn(ws: &Workspace, g: &FnGraph, ix: usize) -> FnLocks {
    let node = &g.nodes[ix];
    let Some((start, end)) = node.body else { return FnLocks::default() };
    let sf = &ws.files[node.file_ix];
    let toks = &sf.lexed.toks[start..end.min(sf.lexed.toks.len())];
    let mut out = FnLocks::default();
    // Let-bound guards: (lock name, brace depth at acquisition).
    let mut guards: Vec<(String, usize)> = Vec::new();
    // Temporaries of the current statement.
    let mut stmt_locks: Vec<String> = Vec::new();
    let mut pending_let = false;
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate() {
        match &t.kind {
            TokKind::Punct(p) if p == "{" => depth += 1,
            TokKind::Punct(p) if p == "}" => {
                depth = depth.saturating_sub(1);
                guards.retain(|(_, d)| *d <= depth);
                stmt_locks.clear();
                pending_let = false;
            }
            TokKind::Punct(p) if p == ";" => {
                stmt_locks.clear();
                pending_let = false;
            }
            TokKind::Ident(id) if id == "let" => pending_let = true,
            TokKind::Ident(id) if id == "lock" => {
                let is_method = i >= 2
                    && toks[i - 1].kind.is_punct(".")
                    && toks.get(i + 1).is_some_and(|n| n.kind.is_punct("("));
                if !is_method {
                    continue;
                }
                let Some(lock) = toks[i - 2].kind.ident().map(str::to_string) else { continue };
                for held in guards.iter().map(|(l, _)| l).chain(stmt_locks.iter()) {
                    if *held != lock && !flow_allowed(&sf.lexed, FlowKind::LockOrder, t.line) {
                        out.pairs.push((held.clone(), lock.clone(), t.line));
                    }
                }
                out.own.insert(lock.clone());
                if pending_let {
                    guards.push((lock, depth));
                    pending_let = false;
                } else {
                    stmt_locks.push(lock);
                }
            }
            TokKind::Ident(name) => {
                // A call under held locks: defer to the callee's transitive
                // acquisition set (filled in after the fixpoint).
                let called = toks.get(i + 1).is_some_and(|n| n.kind.is_punct("("));
                if called && !guards.is_empty() && !g.named(name).is_empty() {
                    let held: BTreeSet<String> = guards.iter().map(|(l, _)| l.clone()).collect();
                    for &callee in g.named(name) {
                        if callee != ix {
                            out.held_calls.push((held.clone(), callee, t.line));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Runs the analysis: extraction, transitive-acquisition fixpoint, cycle
/// detection over the lock-ordering graph.
pub fn analyze(ws: &Workspace, g: &FnGraph) -> Vec<FlowDiag> {
    let per_fn: Vec<FnLocks> = (0..g.nodes.len()).map(|ix| scan_fn(ws, g, ix)).collect();

    // Transitive acquisition sets: own locks plus everything callees lock.
    let mut acq: Vec<BTreeSet<String>> = per_fn.iter().map(|f| f.own.clone()).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for ix in 0..g.nodes.len() {
            for &c in &g.nodes[ix].callees {
                if c == ix {
                    continue;
                }
                let extra: Vec<String> =
                    acq[c].iter().filter(|l| !acq[ix].contains(*l)).cloned().collect();
                if !extra.is_empty() {
                    acq[ix].extend(extra);
                    changed = true;
                }
            }
        }
    }

    // Ordering edges: first example site per (held, acquired) pair.
    let mut edges: BTreeMap<(String, String), EdgeSite> = BTreeMap::new();
    for (ix, f) in per_fn.iter().enumerate() {
        for (a, b, line) in &f.pairs {
            edges.entry((a.clone(), b.clone())).or_insert(EdgeSite { node: ix, line: *line });
        }
        for (held, callee, line) in &f.held_calls {
            for a in held {
                for b in &acq[*callee] {
                    if a != b {
                        edges
                            .entry((a.clone(), b.clone()))
                            .or_insert(EdgeSite { node: ix, line: *line });
                    }
                }
            }
        }
    }

    // Cycle detection: for each edge a -> b, a path b ->* a closes a cycle.
    // Canonicalize (rotate so the smallest lock leads) to report each once.
    let adj: BTreeMap<&String, Vec<&String>> =
        edges.keys().fold(BTreeMap::new(), |mut m, (a, b)| {
            m.entry(a).or_default().push(b);
            m
        });
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut diags = Vec::new();
    for (a, b) in edges.keys() {
        let Some(mut path) = shortest_path(&adj, b, a) else { continue };
        // path: b ->* a; full cycle is a -> b ->* a.
        path.insert(0, a.clone());
        let canon = canonical_cycle(&path);
        if !seen.insert(canon.clone()) {
            continue;
        }
        let trace: Vec<String> = canon
            .iter()
            .enumerate()
            .map(|(i, l)| {
                let next = &canon[(i + 1) % canon.len()];
                let site = &edges[&(l.clone(), next.clone())];
                format!("`{l}` held while acquiring `{next}` in {} ", g.label(ws, site.node))
            })
            .collect();
        let first = &edges[&(canon[0].clone(), canon[1 % canon.len()].clone())];
        let node = &g.nodes[first.node];
        diags.push(FlowDiag {
            kind: FlowKind::LockOrder,
            file: ws.files[node.file_ix].file.clone(),
            line: first.line,
            symbol: node.key.clone(),
            message: format!(
                "lock-order cycle: {} -> {} (potential deadlock under concurrent callers)",
                canon.join(" -> "),
                canon[0],
            ),
            trace,
        });
    }
    diags
}

/// BFS shortest path `from ->* to` over the ordering graph, inclusive.
fn shortest_path(
    adj: &BTreeMap<&String, Vec<&String>>,
    from: &String,
    to: &String,
) -> Option<Vec<String>> {
    let mut prev: BTreeMap<&String, &String> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([from]);
    let mut seen: BTreeSet<&String> = BTreeSet::from([from]);
    while let Some(n) = queue.pop_front() {
        if n == to {
            let mut path = vec![n.clone()];
            let mut cur = n;
            while let Some(p) = prev.get(cur) {
                path.push((*p).clone());
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for next in adj.get(n).into_iter().flatten() {
            if seen.insert(next) {
                prev.insert(next, n);
                queue.push_back(next);
            }
        }
    }
    None
}

/// Rotates a cycle (no repeated terminal) so the smallest lock leads.
fn canonical_cycle(path: &[String]) -> Vec<String> {
    // Drop the repeated terminal if present (path ends where it started).
    let cycle: &[String] =
        if path.len() > 1 && path.first() == path.last() { &path[..path.len() - 1] } else { path };
    let Some(min_ix) = cycle.iter().enumerate().min_by(|a, b| a.1.cmp(b.1)).map(|(i, _)| i) else {
        return Vec::new();
    };
    cycle[min_ix..].iter().chain(cycle[..min_ix].iter()).cloned().collect()
}
