//! `cargo xtask` — the workspace static-analysis gate.
//!
//! `cargo xtask check` runs, in order:
//! 1. the four custom MiniCost lints (`money-safety`, `no-panic-in-libs`,
//!    `seeded-rng-only`, `lock-discipline`) over every `crates/*/src` tree,
//! 2. `cargo fmt --check` over the workspace crates,
//! 3. `cargo clippy --all-targets -- -D warnings` over the workspace crates.
//!
//! `cargo xtask lint <path>...` runs only the custom lints over the given
//! files or directories (used by the fixture self-tests and for spot checks).
//!
//! Any violation or failed gate exits nonzero with `file:line` diagnostics.

mod lexer;
mod lints;
mod walk;

#[cfg(test)]
mod fixture_tests;

use lints::{scan_source, FileContext, Violation};
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

/// First-party packages the fmt/clippy gates cover (vendored offline stubs
/// under `vendor/` are excluded: they are frozen API shims, not product code).
const GATED_PACKAGES: [&str; 8] = [
    "minicost-pricing",
    "minicost-trace",
    "minicost-forecast",
    "minicost-nn",
    "minicost-rl",
    "minicost-core",
    "minicost-bench",
    "xtask",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => ("check", &[][..]),
    };
    match cmd {
        "check" => cmd_check(),
        "lint" => cmd_lint(rest),
        "help" | "--help" | "-h" => {
            print_usage();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("error: unknown xtask command `{other}`\n");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: cargo xtask <command>\n\n\
         commands:\n  \
         check            run custom lints + `cargo fmt --check` + clippy gate\n  \
         lint <path>...   run only the custom lints over the given paths\n  \
         help             show this message"
    );
}

/// Lints the given files/directories and prints violations. Returns how many,
/// or `None` if a path could not be read (already reported to stderr).
fn lint_paths(paths: &[PathBuf]) -> Option<usize> {
    let mut violations: Vec<Violation> = Vec::new();
    for path in paths {
        let files = match walk::rust_files(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", path.display());
                return None;
            }
        };
        for file in files {
            let src = match std::fs::read_to_string(&file) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot read {}: {e}", file.display());
                    return None;
                }
            };
            let ctx = FileContext::from_path(&file);
            violations.extend(scan_source(&file, &src, &ctx));
        }
    }
    for v in &violations {
        println!("{v}");
    }
    Some(violations.len())
}

fn cmd_lint(args: &[String]) -> ExitCode {
    if args.is_empty() {
        eprintln!("error: `cargo xtask lint` needs at least one path");
        return ExitCode::FAILURE;
    }
    let paths: Vec<PathBuf> = args.iter().map(PathBuf::from).collect();
    match lint_paths(&paths) {
        Some(0) => {
            println!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Some(n) => {
            eprintln!("xtask lint: {n} violation(s)");
            ExitCode::FAILURE
        }
        None => ExitCode::FAILURE,
    }
}

fn cmd_check() -> ExitCode {
    let root = walk::repo_root();
    let mut failed = false;

    // 1. Custom lints.
    println!("==> custom lints (money-safety, no-panic-in-libs, seeded-rng-only, lock-discipline)");
    let files = match walk::workspace_lint_files(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: cannot enumerate workspace sources: {e}");
            return ExitCode::FAILURE;
        }
    };
    match lint_paths(&files) {
        Some(0) => println!("==> custom lints passed ({} files)", files.len()),
        Some(n) => {
            eprintln!("==> custom lints FAILED: {n} violation(s)");
            failed = true;
        }
        None => {
            eprintln!("==> custom lints FAILED: unreadable source file");
            failed = true;
        }
    }

    // 2. rustfmt gate.
    println!("==> cargo fmt --check");
    if !run_cargo(&root, &fmt_args()) {
        eprintln!("==> rustfmt gate FAILED (run `cargo fmt` to fix)");
        failed = true;
    }

    // 3. clippy gate, deny warnings.
    println!("==> cargo clippy --all-targets -- -D warnings");
    if !run_cargo(&root, &clippy_args()) {
        eprintln!("==> clippy gate FAILED");
        failed = true;
    }

    if failed {
        eprintln!("xtask check: FAILED");
        ExitCode::FAILURE
    } else {
        println!("xtask check: all gates passed");
        ExitCode::SUCCESS
    }
}

fn fmt_args() -> Vec<String> {
    let mut args = vec!["fmt".to_string(), "--check".to_string()];
    for p in GATED_PACKAGES {
        args.push("-p".to_string());
        args.push(p.to_string());
    }
    args
}

fn clippy_args() -> Vec<String> {
    let mut args = vec!["clippy".to_string()];
    for p in GATED_PACKAGES {
        args.push("-p".to_string());
        args.push(p.to_string());
    }
    args.extend([
        "--all-targets".to_string(),
        "--".to_string(),
        "-D".to_string(),
        "warnings".to_string(),
    ]);
    args
}

fn run_cargo(root: &Path, args: &[String]) -> bool {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    match Command::new(cargo).args(args).current_dir(root).status() {
        Ok(status) => status.success(),
        Err(e) => {
            eprintln!("error: failed to spawn cargo {}: {e}", args.join(" "));
            false
        }
    }
}
