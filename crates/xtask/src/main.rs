//! `cargo xtask` — the workspace static-analysis gate.
//!
//! `cargo xtask check` runs, in order:
//! 1. the ten custom MiniCost lints (L1 `money-safety`, L2
//!    `no-panic-in-libs`, L3 `seeded-rng-only`, L4 `lock-discipline`, L5
//!    `hashmap-iter-determinism`, L6 `float-reduction-order`, L7
//!    `narrowing-cast-audit`, L8 `exhaustive-tier-match`, L9
//!    `pub-api-doc-coverage`, L10 `escape-hatch-justification`) over every
//!    `crates/*/src` tree, filtered through the committed
//!    `xtask-baseline.json` (expired entries fail),
//! 2. the three interprocedural flow analyses (F1 `determinism-taint`, F2
//!    `panic-reachability`, F3 `lock-order`; DESIGN.md §12) over the
//!    workspace call graph, sharing the same baseline,
//! 3. the two abstract-interpretation analyses (F4 `unit-dimensions`, F5
//!    `hot-alloc`; DESIGN.md §13) over the same call graph, gated on
//!    `xtask-alloc-allowlist.json` and the shared baseline,
//! 4. `cargo fmt --check` over the workspace crates,
//! 5. `cargo clippy --all-targets -- -D warnings` over the workspace crates.
//!
//! `cargo xtask check --json` emits machine-readable diagnostics on stdout
//! (schema in DESIGN.md §8) with human progress diverted to stderr. With
//! `--strict`, unused `xtask-panic-allowlist.json` /
//! `xtask-alloc-allowlist.json` entries are errors instead of warnings
//! (CI passes `--strict` so the committed allowlists never go stale).
//!
//! `cargo xtask lint <path>...` runs only the custom lints over the given
//! files or directories (used by the fixture self-tests and for spot checks).
//!
//! `cargo xtask graph [--json]` prints the workspace symbol/call graph.
//!
//! `cargo xtask flow [--json|--dot]` runs only the F1–F3 flow analyses;
//! `--dot` exports the tainted call subgraph as Graphviz.
//!
//! `cargo xtask units [--json|--dot]` runs only F4; `--dot` exports the
//! derived dimension graph. `cargo xtask alloc [--json]` runs only F5.
//!
//! Any violation or failed gate exits nonzero with `file:line` diagnostics.

mod alloc;
mod baseline;
mod flow;
mod graph;
mod json;
mod lexer;
mod lints;
mod lockorder;
mod parser;
mod reach;
mod syntax_lints;
mod taint;
mod units;
mod walk;

#[cfg(test)]
mod alloc_tests;
#[cfg(test)]
mod fixture_tests;
#[cfg(test)]
mod flow_tests;
#[cfg(test)]
mod units_tests;

use json::Json;
use lints::{scan_source, FileContext, Lint, Violation};
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

/// First-party packages the fmt/clippy gates cover (vendored offline stubs
/// under `vendor/` are excluded: they are frozen API shims, not product code).
const GATED_PACKAGES: [&str; 8] = [
    "minicost-pricing",
    "minicost-trace",
    "minicost-forecast",
    "minicost-nn",
    "minicost-rl",
    "minicost-core",
    "minicost-bench",
    "xtask",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => ("check", &[][..]),
    };
    let json_mode = rest.iter().any(|a| a == "--json");
    match cmd {
        "check" => cmd_check(json_mode, rest.iter().any(|a| a == "--strict")),
        "graph" => cmd_graph(json_mode),
        "flow" => cmd_flow(rest),
        "units" => cmd_units(rest),
        "alloc" => cmd_alloc(rest),
        "lint" => cmd_lint(rest),
        "help" | "--help" | "-h" => {
            print_usage();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("error: unknown xtask command `{other}`\n");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: cargo xtask <command>\n\n\
         commands:\n  \
         check [--json] [--strict]\n                     \
         run the ten custom lints + F1-F3 flow analyses +\n                     \
         F4/F5 abstract interpretation (baseline-filtered) +\n                     \
         `cargo fmt --check` + clippy gate; --json emits the\n                     \
         diagnostics document (DESIGN.md \u{a7}8) on stdout;\n                     \
         --strict makes unused allowlist entries errors\n  \
         flow [--json|--dot] run only the F1-F3 flow analyses (DESIGN.md\n                     \
         \u{a7}12); --dot exports the tainted call subgraph\n  \
         units [--json|--dot]\n                     \
         run only the F4 unit-dimensions analysis (DESIGN.md\n                     \
         \u{a7}13); --dot exports the derived dimension graph\n  \
         alloc [--json]     run only the F5 hot-path allocation analysis\n  \
         graph [--json]     print the workspace symbol/call graph\n  \
         lint <path>...     run only the custom lints over the given paths\n  \
         help               show this message"
    );
}

/// Lints the given files/directories and prints violations. Returns how many,
/// or `None` if a path could not be read (already reported to stderr).
fn lint_paths(paths: &[PathBuf]) -> Option<usize> {
    let violations = match collect_violations(paths) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return None;
        }
    };
    for v in &violations {
        println!("{v}");
    }
    Some(violations.len())
}

/// Scans every Rust file under the given paths with all applicable lints.
fn collect_violations(paths: &[PathBuf]) -> Result<Vec<Violation>, String> {
    let mut violations: Vec<Violation> = Vec::new();
    for path in paths {
        let files =
            walk::rust_files(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        for file in files {
            let src = std::fs::read_to_string(&file)
                .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
            let ctx = FileContext::from_path(&file);
            violations.extend(scan_source(&file, &src, &ctx));
        }
    }
    Ok(violations)
}

fn cmd_lint(args: &[String]) -> ExitCode {
    if args.is_empty() {
        eprintln!("error: `cargo xtask lint` needs at least one path");
        return ExitCode::FAILURE;
    }
    let paths: Vec<PathBuf> = args.iter().map(PathBuf::from).collect();
    match lint_paths(&paths) {
        Some(0) => {
            println!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Some(n) => {
            eprintln!("xtask lint: {n} violation(s)");
            ExitCode::FAILURE
        }
        None => ExitCode::FAILURE,
    }
}

/// Human progress goes to stdout normally, stderr under `--json` (stdout is
/// reserved for the diagnostics document there).
macro_rules! progress {
    ($json_mode:expr, $($arg:tt)*) => {
        if $json_mode {
            eprintln!($($arg)*);
        } else {
            println!($($arg)*);
        }
    };
}

#[allow(clippy::too_many_lines)]
fn cmd_check(json_mode: bool, strict: bool) -> ExitCode {
    let root = walk::repo_root();
    let mut failed = false;

    // 1. Custom lints, filtered through the committed baseline.
    progress!(json_mode, "==> custom lints (L1-L10, baseline: xtask-baseline.json)");
    let files = match walk::workspace_lint_files(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: cannot enumerate workspace sources: {e}");
            return ExitCode::FAILURE;
        }
    };
    let violations = match collect_violations(&files) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let base = match baseline::Baseline::load(&root) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: baseline unreadable: {e}");
            return ExitCode::FAILURE;
        }
    };

    // 2. Flow analyses over the call graph, sharing the same baseline.
    progress!(
        json_mode,
        "==> flow analyses (F1 determinism-taint, F2 panic-reachability, F3 lock-order)"
    );
    let ws = match flow::Workspace::load_flow(&root) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let g = flow::FnGraph::build(&ws);
    let panic_allow = match reach::PanicAllowlist::load(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (flow_diags, flow_warnings) = flow::analyze(&ws, &g, &panic_allow);

    // 3. Abstract interpretation over the same call graph.
    progress!(json_mode, "==> abstract interpretation (F4 unit-dimensions, F5 hot-alloc)");
    let (unit_diags, unit_warnings) = units::analyze(&ws, &g);
    let alloc_allow = match alloc::AllocAllowlist::load(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let alloc_roots = alloc::roots(&g);
    let (alloc_diags, alloc_warnings) = alloc::analyze(&ws, &g, &alloc_roots, &alloc_allow);

    // Unused allowlist entries are hygiene warnings, promoted to errors
    // under `--strict` so CI keeps the committed allowlists tight.
    let mut unused_allow = 0usize;
    for w in flow_warnings.iter().chain(&unit_warnings).chain(&alloc_warnings) {
        let stale = w.starts_with("unused panic-allowlist entry")
            || w.starts_with("unused alloc-allowlist entry");
        if strict && stale {
            eprintln!("error: {w}");
            unused_allow += 1;
        } else {
            eprintln!("warning: {w}");
        }
    }
    if unused_allow > 0 {
        eprintln!("==> allowlist hygiene FAILED (--strict): {unused_allow} unused entr(ies)");
        failed = true;
    }

    // One combined baseline application keeps `unused` accurate across all
    // diagnostic families: lints first, then F1-F3, then F4, then F5.
    let today = baseline::today_utc();
    let mut items: Vec<(String, String)> =
        violations.iter().map(|v| (v.lint.name().to_string(), v.file.clone())).collect();
    items.extend(flow_diags.iter().map(|d| (d.kind.name().to_string(), d.file.clone())));
    items.extend(unit_diags.iter().map(|d| (d.kind.name().to_string(), d.file.clone())));
    items.extend(alloc_diags.iter().map(|d| (d.kind.name().to_string(), d.file.clone())));
    let applied = base.apply_named(&items, &today);
    let (lint_matched, rest_matched) = applied.matched.split_at(violations.len());
    let (flow_matched, rest_matched) = rest_matched.split_at(flow_diags.len());
    let (unit_matched, alloc_matched) = rest_matched.split_at(unit_diags.len());
    let fresh: Vec<&Violation> =
        violations.iter().zip(lint_matched).filter(|(_, m)| m.is_none()).map(|(v, _)| v).collect();
    let fresh_flow: Vec<&flow::FlowDiag> =
        flow_diags.iter().zip(flow_matched).filter(|(_, m)| m.is_none()).map(|(d, _)| d).collect();
    let fresh_units: Vec<&flow::FlowDiag> =
        unit_diags.iter().zip(unit_matched).filter(|(_, m)| m.is_none()).map(|(d, _)| d).collect();
    let fresh_alloc: Vec<&flow::FlowDiag> = alloc_diags
        .iter()
        .zip(alloc_matched)
        .filter(|(_, m)| m.is_none())
        .map(|(d, _)| d)
        .collect();
    let baselined = violations.len() - fresh.len() + flow_diags.len() - fresh_flow.len()
        + unit_diags.len()
        - fresh_units.len()
        + alloc_diags.len()
        - fresh_alloc.len();
    for v in &fresh {
        eprintln!("{v}");
    }
    for d in fresh_flow.iter().chain(&fresh_units).chain(&fresh_alloc) {
        eprintln!("{d}");
    }
    for e in &applied.expired {
        eprintln!(
            "error: baseline entry expired {}: {} in {} ({})",
            e.expires, e.lint, e.file, e.reason
        );
    }
    for e in &applied.unused {
        eprintln!(
            "warning: unused baseline entry: {} in {} (expires {})",
            e.lint, e.file, e.expires
        );
    }
    let lints_ok = fresh.is_empty() && applied.expired.is_empty();
    if lints_ok {
        progress!(
            json_mode,
            "==> custom lints passed ({} files, {baselined} baselined)",
            files.len()
        );
    } else {
        eprintln!(
            "==> custom lints FAILED: {} fresh violation(s), {} expired baseline entr(ies)",
            fresh.len(),
            applied.expired.len()
        );
        failed = true;
    }
    let flow_ok = fresh_flow.is_empty();
    if flow_ok {
        progress!(json_mode, "==> flow analyses passed ({} diagnostic(s) baselined)", {
            flow_diags.len() - fresh_flow.len()
        });
    } else {
        eprintln!("==> flow analyses FAILED: {} fresh diagnostic(s)", fresh_flow.len());
        failed = true;
    }
    let units_ok = fresh_units.is_empty();
    if units_ok {
        progress!(json_mode, "==> unit-dimensions passed ({} diagnostic(s) baselined)", {
            unit_diags.len() - fresh_units.len()
        });
    } else {
        eprintln!("==> unit-dimensions FAILED: {} fresh diagnostic(s)", fresh_units.len());
        failed = true;
    }
    let alloc_ok = fresh_alloc.is_empty();
    if alloc_ok {
        progress!(json_mode, "==> hot-alloc passed ({} diagnostic(s) baselined)", {
            alloc_diags.len() - fresh_alloc.len()
        });
    } else {
        eprintln!("==> hot-alloc FAILED: {} fresh diagnostic(s)", fresh_alloc.len());
        failed = true;
    }

    // 4. rustfmt gate.
    progress!(json_mode, "==> cargo fmt --check");
    let fmt_ok = run_cargo(&root, &fmt_args(), json_mode);
    if !fmt_ok {
        eprintln!("==> rustfmt gate FAILED (run `cargo fmt` to fix)");
        failed = true;
    }

    // 5. clippy gate, deny warnings.
    progress!(json_mode, "==> cargo clippy --all-targets -- -D warnings");
    let clippy_ok = run_cargo(&root, &clippy_args(), json_mode);
    if !clippy_ok {
        eprintln!("==> clippy gate FAILED");
        failed = true;
    }

    if json_mode {
        let ai = AiReport {
            unit_diags,
            alloc_diags,
            panic_unused: flow_warnings
                .iter()
                .filter(|w| w.starts_with("unused panic-allowlist entry"))
                .cloned()
                .collect(),
            alloc_unused: alloc_warnings
                .iter()
                .filter(|w| w.starts_with("unused alloc-allowlist entry"))
                .cloned()
                .collect(),
            strict,
        };
        let doc = diagnostics_json(
            &root,
            files.len(),
            &violations,
            &flow_diags,
            &ai,
            &applied,
            fmt_ok,
            clippy_ok,
            !failed,
        );
        print!("{}", doc.render());
    }
    if failed {
        eprintln!("xtask check: FAILED");
        ExitCode::FAILURE
    } else {
        progress!(json_mode, "xtask check: all gates passed");
        ExitCode::SUCCESS
    }
}

/// Step-3 abstract-interpretation results (F4/F5) plus allowlist hygiene,
/// threaded into the `--json` diagnostics document.
struct AiReport {
    /// F4 unit-dimensions diagnostics.
    unit_diags: Vec<flow::FlowDiag>,
    /// F5 hot-alloc diagnostics.
    alloc_diags: Vec<flow::FlowDiag>,
    /// Unused `xtask-panic-allowlist.json` entry warnings.
    panic_unused: Vec<String>,
    /// Unused `xtask-alloc-allowlist.json` entry warnings.
    alloc_unused: Vec<String>,
    /// Whether `--strict` promoted those warnings to errors.
    strict: bool,
}

/// Assembles the `cargo xtask check --json` document (schema: DESIGN.md §8).
#[allow(clippy::too_many_arguments)]
fn diagnostics_json(
    root: &Path,
    file_count: usize,
    violations: &[Violation],
    flow_diags: &[flow::FlowDiag],
    ai: &AiReport,
    applied: &baseline::Applied,
    fmt_ok: bool,
    clippy_ok: bool,
    ok: bool,
) -> Json {
    let rel = |file: &str| {
        let root_prefix = format!("{}/", root.display());
        Json::Str(file.strip_prefix(&root_prefix).unwrap_or(file).to_string())
    };
    let entry_json = |e: &baseline::Entry| {
        Json::obj([
            ("lint", Json::Str(e.lint.clone())),
            ("file", Json::Str(e.file.clone())),
            ("reason", Json::Str(e.reason.clone())),
            ("expires", Json::Str(e.expires.clone())),
        ])
    };
    let (lint_matched, rest_matched) = applied.matched.split_at(violations.len());
    let (flow_matched, rest_matched) = rest_matched.split_at(flow_diags.len());
    let (unit_matched, alloc_matched) = rest_matched.split_at(ai.unit_diags.len());
    let fresh = lint_matched.iter().filter(|m| m.is_none()).count();
    let flow_fresh = flow_matched.iter().filter(|m| m.is_none()).count();
    let unit_fresh = unit_matched.iter().filter(|m| m.is_none()).count();
    let alloc_fresh = alloc_matched.iter().filter(|m| m.is_none()).count();
    // The `flow` object carries every graph-analysis diagnostic (F1-F5).
    let graph_total = flow_diags.len() + ai.unit_diags.len() + ai.alloc_diags.len();
    let graph_fresh = flow_fresh + unit_fresh + alloc_fresh;
    Json::obj([
        ("version", Json::Num(1)),
        ("lints", Json::Arr(Lint::all().iter().map(|l| Json::Str(l.name().to_string())).collect())),
        (
            "violations",
            Json::Arr(
                violations
                    .iter()
                    .zip(lint_matched)
                    .map(|(v, m)| {
                        Json::obj([
                            ("lint", Json::Str(v.lint.name().to_string())),
                            ("file", rel(&v.file)),
                            ("line", Json::Num(i64::try_from(v.line).unwrap_or(i64::MAX))),
                            ("message", Json::Str(v.message.clone())),
                            ("baselined", Json::Bool(m.is_some())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "flow",
            Json::obj([
                (
                    "kinds",
                    Json::Arr(
                        flow::FlowKind::all()
                            .iter()
                            .map(|k| Json::Str(k.name().to_string()))
                            .collect(),
                    ),
                ),
                (
                    "diagnostics",
                    Json::Arr(
                        flow_diags
                            .iter()
                            .zip(flow_matched)
                            .chain(ai.unit_diags.iter().zip(unit_matched))
                            .chain(ai.alloc_diags.iter().zip(alloc_matched))
                            .map(|(d, m)| flow_diag_json(d, m.is_some()))
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "allowlists",
            Json::obj([
                ("strict", Json::Bool(ai.strict)),
                (
                    "panic_unused",
                    Json::Arr(ai.panic_unused.iter().map(|w| Json::Str(w.clone())).collect()),
                ),
                (
                    "alloc_unused",
                    Json::Arr(ai.alloc_unused.iter().map(|w| Json::Str(w.clone())).collect()),
                ),
            ]),
        ),
        (
            "baseline",
            Json::obj([
                ("path", Json::Str("xtask-baseline.json".to_string())),
                ("expired", Json::Arr(applied.expired.iter().map(entry_json).collect())),
                ("unused", Json::Arr(applied.unused.iter().map(entry_json).collect())),
            ]),
        ),
        (
            "gates",
            Json::obj([
                ("lints", Json::Bool(fresh == 0 && applied.expired.is_empty())),
                ("flow", Json::Bool(flow_fresh == 0)),
                ("units", Json::Bool(unit_fresh == 0)),
                ("alloc", Json::Bool(alloc_fresh == 0)),
                (
                    "allowlists",
                    Json::Bool(
                        !ai.strict || (ai.panic_unused.is_empty() && ai.alloc_unused.is_empty()),
                    ),
                ),
                ("fmt", Json::Bool(fmt_ok)),
                ("clippy", Json::Bool(clippy_ok)),
            ]),
        ),
        (
            "summary",
            Json::obj([
                ("files", Json::Num(i64::try_from(file_count).unwrap_or(i64::MAX))),
                ("total", Json::Num(i64::try_from(violations.len()).unwrap_or(i64::MAX))),
                ("fresh", Json::Num(i64::try_from(fresh).unwrap_or(i64::MAX))),
                (
                    "baselined",
                    Json::Num(i64::try_from(violations.len() - fresh).unwrap_or(i64::MAX)),
                ),
                ("flow_total", Json::Num(i64::try_from(graph_total).unwrap_or(i64::MAX))),
                ("flow_fresh", Json::Num(i64::try_from(graph_fresh).unwrap_or(i64::MAX))),
                ("ok", Json::Bool(ok)),
            ]),
        ),
    ])
}

/// One flow diagnostic as JSON (shared by the check and flow documents).
fn flow_diag_json(d: &flow::FlowDiag, baselined: bool) -> Json {
    Json::obj([
        ("kind", Json::Str(d.kind.name().to_string())),
        ("code", Json::Str(d.kind.code().to_string())),
        ("file", Json::Str(d.file.clone())),
        ("line", Json::Num(i64::try_from(d.line).unwrap_or(i64::MAX))),
        ("symbol", Json::Str(d.symbol.clone())),
        ("message", Json::Str(d.message.clone())),
        ("trace", Json::Arr(d.trace.iter().map(|s| Json::Str(s.clone())).collect())),
        ("baselined", Json::Bool(baselined)),
    ])
}

/// Loads the workspace, builds the call graph, and runs the F1–F3 analyses.
fn run_flow(root: &Path) -> Result<(Vec<flow::FlowDiag>, Vec<String>), String> {
    let ws = flow::Workspace::load_flow(root)?;
    let g = flow::FnGraph::build(&ws);
    let allow = reach::PanicAllowlist::load(root)?;
    Ok(flow::analyze(&ws, &g, &allow))
}

/// `cargo xtask flow [--json|--dot]`: the F1-F3 flow analyses standalone.
fn cmd_flow(args: &[String]) -> ExitCode {
    let json_mode = args.iter().any(|a| a == "--json");
    let root = walk::repo_root();
    if args.iter().any(|a| a == "--dot") {
        let ws = match flow::Workspace::load_flow(&root) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let g = flow::FnGraph::build(&ws);
        let t = taint::compute(&ws, &g);
        print!("{}", taint::dot(&ws, &g, &t));
        return ExitCode::SUCCESS;
    }
    let (diags, warnings) = match run_flow(&root) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    kind_report("flow", &flow::FlowKind::flow_kinds(), diags, warnings, json_mode)
}

/// `cargo xtask units [--json|--dot]`: the F4 analysis standalone.
fn cmd_units(args: &[String]) -> ExitCode {
    let json_mode = args.iter().any(|a| a == "--json");
    let root = walk::repo_root();
    let ws = match flow::Workspace::load_flow(&root) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let g = flow::FnGraph::build(&ws);
    if args.iter().any(|a| a == "--dot") {
        let (u, _, _) = units::compute(&ws, &g);
        print!("{}", units::dot(&ws, &g, &u));
        return ExitCode::SUCCESS;
    }
    let (diags, warnings) = units::analyze(&ws, &g);
    kind_report("units", &[flow::FlowKind::UnitDimensions], diags, warnings, json_mode)
}

/// `cargo xtask alloc [--json]`: the F5 analysis standalone.
fn cmd_alloc(args: &[String]) -> ExitCode {
    let json_mode = args.iter().any(|a| a == "--json");
    let root = walk::repo_root();
    let ws = match flow::Workspace::load_flow(&root) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let g = flow::FnGraph::build(&ws);
    let allow = match alloc::AllocAllowlist::load(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let roots = alloc::roots(&g);
    let (diags, warnings) = alloc::analyze(&ws, &g, &roots, &allow);
    kind_report("alloc", &[flow::FlowKind::HotAlloc], diags, warnings, json_mode)
}

/// Shared tail of the standalone analysis subcommands: applies the
/// baseline (scoped to the given kinds), prints diagnostics, and emits
/// the `--json` document `{version, kinds, diagnostics, warnings, summary}`.
fn kind_report(
    label: &str,
    kinds: &[flow::FlowKind],
    diags: Vec<flow::FlowDiag>,
    warnings: Vec<String>,
    json_mode: bool,
) -> ExitCode {
    let root = walk::repo_root();
    let base = match baseline::Baseline::load(&root) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: baseline unreadable: {e}");
            return ExitCode::FAILURE;
        }
    };
    let today = baseline::today_utc();
    let items: Vec<(String, String)> =
        diags.iter().map(|d| (d.kind.name().to_string(), d.file.clone())).collect();
    let mut applied = base.apply_named(&items, &today);
    // Standalone runs only see this family's diagnostics, so only its
    // baseline entries can be judged expired/unused here; the rest are
    // `check`'s to judge.
    let names: Vec<&str> = kinds.iter().map(|k| k.name()).collect();
    applied.expired.retain(|e| names.contains(&e.lint.as_str()));
    applied.unused.retain(|e| names.contains(&e.lint.as_str()));
    let fresh: Vec<&flow::FlowDiag> =
        diags.iter().zip(&applied.matched).filter(|(_, m)| m.is_none()).map(|(d, _)| d).collect();
    for w in &warnings {
        eprintln!("warning: {w}");
    }
    for d in &fresh {
        if json_mode {
            eprintln!("{d}");
        } else {
            println!("{d}");
        }
    }
    for e in &applied.expired {
        eprintln!(
            "error: baseline entry expired {}: {} in {} ({})",
            e.expires, e.lint, e.file, e.reason
        );
    }
    for e in &applied.unused {
        eprintln!(
            "warning: unused baseline entry: {} in {} (expires {})",
            e.lint, e.file, e.expires
        );
    }
    let ok = fresh.is_empty() && applied.expired.is_empty();
    if json_mode {
        let doc = Json::obj([
            ("version", Json::Num(1)),
            ("kinds", Json::Arr(kinds.iter().map(|k| Json::Str(k.name().to_string())).collect())),
            (
                "diagnostics",
                Json::Arr(
                    diags
                        .iter()
                        .zip(&applied.matched)
                        .map(|(d, m)| flow_diag_json(d, m.is_some()))
                        .collect(),
                ),
            ),
            ("warnings", Json::Arr(warnings.iter().map(|w| Json::Str(w.clone())).collect())),
            (
                "summary",
                Json::obj([
                    ("total", Json::Num(i64::try_from(diags.len()).unwrap_or(i64::MAX))),
                    ("fresh", Json::Num(i64::try_from(fresh.len()).unwrap_or(i64::MAX))),
                    ("ok", Json::Bool(ok)),
                ]),
            ),
        ]);
        print!("{}", doc.render());
    }
    if ok {
        progress!(json_mode, "xtask {label}: clean ({} baselined)", diags.len() - fresh.len());
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "xtask {label}: FAILED ({} fresh diagnostic(s), {} expired entr(ies))",
            fresh.len(),
            applied.expired.len()
        );
        ExitCode::FAILURE
    }
}

/// Builds the workspace symbol graph and prints the summary (or, with
/// `--json`, the full graph document: per-crate stats, the public API
/// surface, and every resolved/unresolved call edge).
fn cmd_graph(json_mode: bool) -> ExitCode {
    let root = walk::repo_root();
    let ws = match flow::Workspace::load(&root) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let parsed = ws.parsed();
    let g = graph::SymbolGraph::build(&parsed);
    if json_mode {
        print!("{}", graph_json(&g).render());
    } else {
        print!("{}", g.summary());
    }
    ExitCode::SUCCESS
}

/// The `cargo xtask graph --json` document.
fn graph_json(g: &graph::SymbolGraph) -> Json {
    let crates = g
        .crates
        .iter()
        .map(|(krate, stats)| {
            let deps = g
                .crate_deps
                .get(krate)
                .map(|d| d.iter().map(|s| Json::Str(s.clone())).collect())
                .unwrap_or_default();
            let mut pub_api: Vec<&graph::Def> = g
                .defs
                .values()
                .flatten()
                .filter(|d| d.krate == *krate && d.is_pub && !d.in_test)
                .collect();
            pub_api.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
            (
                krate.clone(),
                Json::obj([
                    ("items", Json::Num(i64::try_from(stats.items).unwrap_or(0))),
                    ("fns", Json::Num(i64::try_from(stats.fns).unwrap_or(0))),
                    ("pub_items", Json::Num(i64::try_from(stats.pub_items).unwrap_or(0))),
                    ("pub_documented", Json::Num(i64::try_from(stats.pub_documented).unwrap_or(0))),
                    ("uses", Json::Arr(deps)),
                    (
                        "pub_api",
                        Json::Arr(
                            pub_api
                                .iter()
                                .map(|d| {
                                    Json::obj([
                                        ("qualified", Json::Str(d.qualified.clone())),
                                        ("kind", Json::Str(d.kind.label().to_string())),
                                        ("file", Json::Str(d.file.clone())),
                                        ("line", Json::Num(i64::try_from(d.line).unwrap_or(0))),
                                        ("documented", Json::Bool(d.has_doc)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            )
        })
        .collect();
    let edges = g
        .edges
        .iter()
        .map(|e| {
            Json::obj([
                ("from", Json::Str(e.from.clone())),
                ("from_crate", Json::Str(e.from_crate.clone())),
                ("to", Json::Str(e.to_name.clone())),
                ("to_crate", e.to_crate.as_ref().map_or(Json::Null, |c| Json::Str(c.clone()))),
            ])
        })
        .collect();
    Json::obj([
        ("version", Json::Num(1)),
        ("crates", Json::Obj(crates)),
        ("edges", Json::Arr(edges)),
        ("cross_crate_edges", Json::Num(i64::try_from(g.cross_crate_edges()).unwrap_or(0))),
    ])
}

fn fmt_args() -> Vec<String> {
    let mut args = vec!["fmt".to_string(), "--check".to_string()];
    for p in GATED_PACKAGES {
        args.push("-p".to_string());
        args.push(p.to_string());
    }
    args
}

fn clippy_args() -> Vec<String> {
    let mut args = vec!["clippy".to_string()];
    for p in GATED_PACKAGES {
        args.push("-p".to_string());
        args.push(p.to_string());
    }
    args.extend([
        "--all-targets".to_string(),
        "--".to_string(),
        "-D".to_string(),
        "warnings".to_string(),
    ]);
    args
}

/// Runs a cargo subcommand. Under `--json` the child's stdout is captured
/// and replayed on stderr so the diagnostics document owns stdout.
fn run_cargo(root: &Path, args: &[String], json_mode: bool) -> bool {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut cmd = Command::new(cargo);
    cmd.args(args).current_dir(root);
    if json_mode {
        match cmd.output() {
            Ok(out) => {
                eprint!("{}", String::from_utf8_lossy(&out.stdout));
                eprint!("{}", String::from_utf8_lossy(&out.stderr));
                out.status.success()
            }
            Err(e) => {
                eprintln!("error: failed to spawn cargo {}: {e}", args.join(" "));
                false
            }
        }
    } else {
        match cmd.status() {
            Ok(status) => status.success(),
            Err(e) => {
                eprintln!("error: failed to spawn cargo {}: {e}", args.join(" "));
                false
            }
        }
    }
}
