//! A lightweight item-level parser on top of [`crate::lexer`].
//!
//! Builds a per-file item tree: functions, structs, enums (with variants),
//! traits, impls, modules, consts/statics, type aliases, `use` declarations,
//! and `macro_rules!` definitions. Each item records its visibility, line,
//! whether an outer doc comment sits directly above it, whether it lives in
//! test code, and (for functions/impls/mods) the token range of its body so
//! later passes can analyse call sites without re-lexing.
//!
//! This is deliberately not a full Rust grammar: it recognises just enough
//! item structure for the workspace symbol graph and the syntax-aware lints
//! (L5–L9), and it degrades gracefully — tokens it does not understand are
//! skipped, never fatal.

use crate::lexer::{Lexed, Tok, TokKind};
use crate::lints::Marks;

/// What kind of item a node in the tree is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn` (free, impl method, or trait method).
    Fn,
    /// `struct` definition.
    Struct,
    /// `enum` definition (variants are child items).
    Enum,
    /// One enum variant.
    Variant,
    /// `trait` definition (members are child items).
    Trait,
    /// `impl` block (members are child items; `name` is the self type).
    Impl,
    /// `mod` (inline or file; inline members are child items).
    Mod,
    /// `const` item.
    Const,
    /// `static` item.
    Static,
    /// `type` alias.
    TypeAlias,
    /// `use` declaration (`name` is the joined path).
    Use,
    /// `macro_rules!` definition.
    Macro,
}

impl ItemKind {
    /// Lowercase keyword-ish label for diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            ItemKind::Fn => "fn",
            ItemKind::Struct => "struct",
            ItemKind::Enum => "enum",
            ItemKind::Variant => "variant",
            ItemKind::Trait => "trait",
            ItemKind::Impl => "impl",
            ItemKind::Mod => "mod",
            ItemKind::Const => "const",
            ItemKind::Static => "static",
            ItemKind::TypeAlias => "type",
            ItemKind::Use => "use",
            ItemKind::Macro => "macro",
        }
    }
}

/// Item visibility, collapsed to what the lints need.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Vis {
    /// No `pub` at all.
    Private,
    /// `pub(crate)`, `pub(super)`, `pub(in ...)` — not exported API.
    Scoped,
    /// Bare `pub` — part of the crate's exported surface.
    Pub,
}

/// One node of the per-file item tree.
#[derive(Clone, Debug)]
pub struct Item {
    /// Item kind.
    pub kind: ItemKind,
    /// Item name (self type for impls, joined path for uses).
    pub name: String,
    /// Visibility.
    pub vis: Vis,
    /// 1-based line of the defining keyword.
    pub line: usize,
    /// Token index of the defining keyword (start of the signature for
    /// functions), so lints can scope scans to one item.
    pub start_tok: usize,
    /// True when an outer doc comment ends on the line directly above the
    /// item (above its attributes, if any).
    pub has_doc: bool,
    /// True when the item sits inside `#[cfg(test)]` / `#[test]` code.
    pub in_test: bool,
    /// Token index range `[start, end)` of the body block including braces,
    /// for items that have one.
    pub body: Option<(usize, usize)>,
    /// Members, for containers (impl/trait/mod) and enums (variants).
    pub children: Vec<Item>,
}

/// Parses the item tree of one lexed file.
pub fn parse_items(lexed: &Lexed, marks: &Marks) -> Vec<Item> {
    let mut cursor = Cursor { toks: &lexed.toks, marks, doc_lines: &lexed.doc_lines };
    let mut i = 0;
    cursor.parse_container(&mut i, lexed.toks.len())
}

struct Cursor<'a> {
    toks: &'a [Tok],
    marks: &'a Marks,
    doc_lines: &'a [usize],
}

/// Keywords that can never be a callee or item name.
const ITEM_MODIFIERS: &[&str] = &["unsafe", "async", "extern", "default"];

impl Cursor<'_> {
    fn kind(&self, i: usize) -> Option<&TokKind> {
        self.toks.get(i).map(|t| &t.kind)
    }

    fn ident(&self, i: usize) -> Option<&str> {
        self.kind(i).and_then(TokKind::ident)
    }

    fn is_punct(&self, i: usize, p: &str) -> bool {
        self.kind(i).is_some_and(|k| k.is_punct(p))
    }

    /// Skips a balanced `open`/`close` group with the cursor on `open`;
    /// returns the index just past the matching closer.
    fn skip_group(&self, mut i: usize, open: &str, close: &str) -> usize {
        let mut depth = 0usize;
        while let Some(t) = self.toks.get(i) {
            if t.kind.is_punct(open) {
                depth += 1;
            } else if t.kind.is_punct(close) {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        i
    }

    /// Parses items until `end` (exclusive) or an unmatched `}`.
    fn parse_container(&mut self, i: &mut usize, end: usize) -> Vec<Item> {
        let mut items = Vec::new();
        // Line of the first attribute of the pending item, if any.
        let mut attr_line: Option<usize> = None;
        let mut vis = Vis::Private;
        let mut vis_line: Option<usize> = None;

        while *i < end {
            let line = self.toks[*i].line;
            match &self.toks[*i].kind {
                TokKind::Punct(p) if p == "#" => {
                    // Attribute: `#[...]` or `#![...]`.
                    let mut j = *i + 1;
                    if self.is_punct(j, "!") {
                        j += 1;
                    }
                    if self.is_punct(j, "[") {
                        attr_line.get_or_insert(line);
                        *i = self.skip_group(j, "[", "]");
                    } else {
                        *i += 1;
                    }
                }
                TokKind::Punct(p) if p == "}" => {
                    // Container body closed; caller consumes the brace.
                    break;
                }
                TokKind::Punct(p) if p == "{" => {
                    // Stray block (macro body, const block): skip wholesale.
                    *i = self.skip_group(*i, "{", "}");
                    (attr_line, vis, vis_line) = (None, Vis::Private, None);
                }
                TokKind::Ident(id) if id == "pub" => {
                    vis_line.get_or_insert(line);
                    vis = Vis::Pub;
                    *i += 1;
                    if self.is_punct(*i, "(") {
                        vis = Vis::Scoped;
                        *i = self.skip_group(*i, "(", ")");
                    }
                }
                TokKind::Ident(id) if ITEM_MODIFIERS.contains(&id.as_str()) => {
                    *i += 1;
                    // `extern "C"` ABI string.
                    if id == "extern" && matches!(self.kind(*i), Some(TokKind::Lit)) {
                        *i += 1;
                    }
                }
                TokKind::Ident(id) => {
                    let kw = id.clone();
                    let anchor = attr_line.or(vis_line).unwrap_or(line);
                    let has_doc = anchor > 0 && self.doc_lines.binary_search(&(anchor - 1)).is_ok();
                    let in_test = self.marks.in_test.get(*i).copied().unwrap_or(false);
                    let parsed = self.parse_item(&kw, i, end, vis, has_doc, in_test);
                    match parsed {
                        Some(item) => items.push(item),
                        None => *i += 1,
                    }
                    (attr_line, vis, vis_line) = (None, Vis::Private, None);
                }
                _ => {
                    *i += 1;
                    (attr_line, vis, vis_line) = (None, Vis::Private, None);
                }
            }
        }
        items
    }

    /// Parses one item whose keyword is at `*i`; advances past it.
    #[allow(clippy::too_many_lines)]
    fn parse_item(
        &mut self,
        kw: &str,
        i: &mut usize,
        end: usize,
        vis: Vis,
        has_doc: bool,
        in_test: bool,
    ) -> Option<Item> {
        let line = self.toks[*i].line;
        let start_tok = *i;
        let item = |kind, name, body, children| {
            Some(Item { kind, name, vis, line, start_tok, has_doc, in_test, body, children })
        };
        match kw {
            "fn" => {
                let name = self.ident(*i + 1)?.to_string();
                *i += 2;
                // Signature: everything to the body `{` or a `;` (trait
                // method without default body) at paren depth 0.
                let mut paren = 0usize;
                while *i < end {
                    match &self.toks[*i].kind {
                        TokKind::Punct(p) if p == "(" || p == "[" => paren += 1,
                        TokKind::Punct(p) if p == ")" || p == "]" => {
                            paren = paren.saturating_sub(1);
                        }
                        TokKind::Punct(p) if p == ";" && paren == 0 => {
                            *i += 1;
                            return item(ItemKind::Fn, name, None, Vec::new());
                        }
                        TokKind::Punct(p) if p == "{" && paren == 0 => {
                            let start = *i;
                            *i = self.skip_group(*i, "{", "}");
                            return item(ItemKind::Fn, name, Some((start, *i)), Vec::new());
                        }
                        _ => {}
                    }
                    *i += 1;
                }
                item(ItemKind::Fn, name, None, Vec::new())
            }
            "struct" => {
                let name = self.ident(*i + 1)?.to_string();
                *i += 2;
                // Unit/tuple structs end with `;`; record structs have a
                // brace body we skip (fields are not items).
                let mut paren = 0usize;
                while *i < end {
                    match &self.toks[*i].kind {
                        TokKind::Punct(p) if p == "(" => paren += 1,
                        TokKind::Punct(p) if p == ")" => paren = paren.saturating_sub(1),
                        TokKind::Punct(p) if p == ";" && paren == 0 => {
                            *i += 1;
                            break;
                        }
                        TokKind::Punct(p) if p == "{" && paren == 0 => {
                            *i = self.skip_group(*i, "{", "}");
                            break;
                        }
                        _ => {}
                    }
                    *i += 1;
                }
                item(ItemKind::Struct, name, None, Vec::new())
            }
            "enum" => {
                let name = self.ident(*i + 1)?.to_string();
                *i += 2;
                while *i < end && !self.is_punct(*i, "{") {
                    *i += 1;
                }
                let start = *i;
                let body_end = self.skip_group(*i, "{", "}");
                let variants = self.parse_variants(start + 1, body_end.saturating_sub(1), vis);
                *i = body_end;
                item(ItemKind::Enum, name, Some((start, body_end)), variants)
            }
            "trait" | "mod" | "impl" => {
                let (kind, name) = match kw {
                    "trait" => (ItemKind::Trait, self.ident(*i + 1)?.to_string()),
                    "mod" => (ItemKind::Mod, self.ident(*i + 1)?.to_string()),
                    _ => (ItemKind::Impl, String::new()),
                };
                let name = if kw == "impl" {
                    *i += 1;
                    self.impl_self_type(i, end)
                } else {
                    *i += 2;
                    name
                };
                // `mod name;` — no body.
                if self.is_punct(*i, ";") {
                    *i += 1;
                    return item(kind, name, None, Vec::new());
                }
                while *i < end && !self.is_punct(*i, "{") {
                    *i += 1;
                }
                let start = *i;
                *i += 1; // past `{`
                let children = self.parse_container(i, end);
                if self.is_punct(*i, "}") {
                    *i += 1;
                }
                item(kind, name, Some((start, *i)), children)
            }
            "const" | "static" => {
                // `const fn` is a function; `const NAME: T = ...;` an item.
                if self.ident(*i + 1) == Some("fn") {
                    *i += 1;
                    return self.parse_item("fn", i, end, vis, has_doc, in_test);
                }
                let mut j = *i + 1;
                if self.ident(j) == Some("mut") {
                    j += 1;
                }
                let name = self.ident(j)?.to_string();
                *i = j + 1;
                self.skip_to_semi(i, end);
                let kind = if kw == "const" { ItemKind::Const } else { ItemKind::Static };
                item(kind, name, None, Vec::new())
            }
            "type" => {
                let name = self.ident(*i + 1)?.to_string();
                *i += 2;
                self.skip_to_semi(i, end);
                item(ItemKind::TypeAlias, name, None, Vec::new())
            }
            "use" => {
                *i += 1;
                let mut path = String::new();
                while *i < end && !self.is_punct(*i, ";") {
                    match &self.toks[*i].kind {
                        TokKind::Ident(s) => path.push_str(s),
                        TokKind::Punct(p) => path.push_str(p),
                        TokKind::Num | TokKind::Lit => {}
                    }
                    *i += 1;
                }
                *i += 1; // past `;`
                item(ItemKind::Use, path, None, Vec::new())
            }
            "macro_rules" => {
                // `macro_rules ! name { ... }`
                let name = self.ident(*i + 2)?.to_string();
                *i += 3;
                while *i < end && !self.is_punct(*i, "{") {
                    *i += 1;
                }
                *i = self.skip_group(*i, "{", "}");
                item(ItemKind::Macro, name, None, Vec::new())
            }
            _ => None,
        }
    }

    /// With the cursor just past `impl`, returns the self type's last path
    /// segment (`Bar` for `impl<T> Foo for pricing::Bar<T> where ...`) and
    /// leaves the cursor on the body `{` (or `;`).
    fn impl_self_type(&self, i: &mut usize, end: usize) -> String {
        let mut angle = 0i32;
        let mut name = String::new();
        let mut in_where = false;
        while *i < end {
            match &self.toks[*i].kind {
                TokKind::Punct(p) if p == "{" || p == ";" => break,
                TokKind::Punct(p) if p == "<" => angle += 1,
                TokKind::Punct(p) if p == ">" => angle -= 1,
                TokKind::Punct(p) if p == "<<" => angle += 2,
                TokKind::Punct(p) if p == ">>" => angle -= 2,
                TokKind::Ident(id) if angle == 0 => match id.as_str() {
                    "where" => in_where = true,
                    // `for` restarts collection: the self type follows it.
                    "for" => name.clear(),
                    "dyn" | "mut" => {}
                    _ if !in_where => name = id.clone(),
                    _ => {}
                },
                _ => {}
            }
            *i += 1;
        }
        name
    }

    /// Skips to just past the next `;` at brace/paren depth 0.
    fn skip_to_semi(&self, i: &mut usize, end: usize) {
        let mut depth = 0usize;
        while *i < end {
            match &self.toks[*i].kind {
                TokKind::Punct(p) if p == "{" || p == "(" || p == "[" => depth += 1,
                TokKind::Punct(p) if p == "}" || p == ")" || p == "]" => {
                    depth = depth.saturating_sub(1);
                }
                TokKind::Punct(p) if p == ";" && depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
            *i += 1;
        }
    }

    /// Collects variant names from an enum body token range.
    fn parse_variants(&self, start: usize, end: usize, vis: Vis) -> Vec<Item> {
        let mut out = Vec::new();
        let mut j = start;
        let mut expect_variant = true;
        while j < end {
            match &self.toks[j].kind {
                TokKind::Punct(p) if p == "#" && self.is_punct(j + 1, "[") => {
                    j = self.skip_group(j + 1, "[", "]");
                }
                TokKind::Punct(p) if p == "(" => j = self.skip_group(j, "(", ")"),
                TokKind::Punct(p) if p == "{" => j = self.skip_group(j, "{", "}"),
                TokKind::Punct(p) if p == "," => {
                    expect_variant = true;
                    j += 1;
                }
                TokKind::Ident(name) if expect_variant => {
                    out.push(Item {
                        kind: ItemKind::Variant,
                        name: name.clone(),
                        vis,
                        line: self.toks[j].line,
                        start_tok: j,
                        has_doc: true, // variant docs are not lint-enforced
                        in_test: false,
                        body: None,
                        children: Vec::new(),
                    });
                    expect_variant = false;
                    j += 1;
                }
                _ => j += 1,
            }
        }
        out
    }
}

/// Depth-first iterator over an item tree (pre-order).
pub fn walk_items<'a>(items: &'a [Item], f: &mut impl FnMut(&'a Item, &[&'a Item])) {
    fn rec<'a>(
        items: &'a [Item],
        stack: &mut Vec<&'a Item>,
        f: &mut impl FnMut(&'a Item, &[&'a Item]),
    ) {
        for item in items {
            f(item, stack);
            stack.push(item);
            rec(&item.children, stack, f);
            stack.pop();
        }
    }
    rec(items, &mut Vec::new(), f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::lints::mark_regions;

    fn parse(src: &str) -> Vec<Item> {
        let lexed = lex(src);
        let marks = mark_regions(&lexed.toks);
        parse_items(&lexed, &marks)
    }

    #[test]
    fn parses_free_functions_and_docs() {
        let src = "/// Documented.\npub fn a() -> u8 { 1 }\nfn b() {}\n";
        let items = parse(src);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].kind, ItemKind::Fn);
        assert_eq!(items[0].name, "a");
        assert_eq!(items[0].vis, Vis::Pub);
        assert!(items[0].has_doc);
        assert!(items[0].body.is_some());
        assert_eq!(items[1].vis, Vis::Private);
        assert!(!items[1].has_doc);
    }

    #[test]
    fn doc_above_attributes_counts() {
        let src =
            "/// Doc.\n#[derive(Debug)]\npub struct S { x: u8 }\n#[derive(Debug)]\npub struct T;\n";
        let items = parse(src);
        assert!(items[0].has_doc, "{items:?}");
        assert!(!items[1].has_doc, "{items:?}");
    }

    #[test]
    fn impl_blocks_nest_methods_under_self_type() {
        let src = r"
            impl<T: Clone> Foo for bar::Baz<T> where T: Copy {
                /// Doc.
                pub fn m(&self) {}
                fn n() {}
            }
            impl Plain {
                pub const fn k() -> u8 { 0 }
            }
        ";
        let items = parse(src);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].kind, ItemKind::Impl);
        assert_eq!(items[0].name, "Baz");
        assert_eq!(items[0].children.len(), 2);
        assert_eq!(items[0].children[0].name, "m");
        assert!(items[0].children[0].has_doc);
        assert_eq!(items[1].name, "Plain");
        assert_eq!(items[1].children[0].name, "k");
        assert_eq!(items[1].children[0].kind, ItemKind::Fn);
    }

    #[test]
    fn enums_record_variants() {
        let src = "pub enum Tier { Hot = 0, Cool(u8), Archive { x: u8 } }";
        let items = parse(src);
        assert_eq!(items[0].kind, ItemKind::Enum);
        let names: Vec<&str> = items[0].children.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["Hot", "Cool", "Archive"]);
    }

    #[test]
    fn uses_consts_types_mods_are_items() {
        let src = r"
            use std::collections::{HashMap, HashSet};
            pub const N: usize = 3;
            static mut G: u8 = 0;
            type Pair = (u8, u8);
            mod inner { pub fn f() {} }
            mod file_mod;
        ";
        let items = parse(src);
        let kinds: Vec<ItemKind> = items.iter().map(|i| i.kind).collect();
        assert_eq!(
            kinds,
            vec![
                ItemKind::Use,
                ItemKind::Const,
                ItemKind::Static,
                ItemKind::TypeAlias,
                ItemKind::Mod,
                ItemKind::Mod,
            ]
        );
        assert!(items[0].name.contains("HashMap"));
        assert_eq!(items[4].children.len(), 1);
    }

    #[test]
    fn test_modules_are_marked() {
        let src = r"
            pub fn real() {}
            #[cfg(test)]
            mod tests {
                fn helper() {}
            }
        ";
        let items = parse(src);
        assert!(!items[0].in_test);
        let tests_mod = &items[1];
        assert_eq!(tests_mod.kind, ItemKind::Mod);
        assert!(tests_mod.children[0].in_test, "{tests_mod:?}");
    }

    #[test]
    fn trait_methods_without_bodies_parse() {
        let src = "pub trait F { fn forecast(&self) -> u8; fn name(&self) -> u8 { 0 } }";
        let items = parse(src);
        assert_eq!(items[0].kind, ItemKind::Trait);
        assert_eq!(items[0].children.len(), 2);
        assert!(items[0].children[0].body.is_none());
        assert!(items[0].children[1].body.is_some());
    }

    #[test]
    fn pub_crate_is_scoped_not_pub() {
        let src = "pub(crate) fn f() {}\npub(super) struct S;";
        let items = parse(src);
        assert_eq!(items[0].vis, Vis::Scoped);
        assert_eq!(items[1].vis, Vis::Scoped);
    }

    #[test]
    fn walk_visits_nested_items_with_stack() {
        let src = "impl A { fn m() {} }\nmod b { fn g() {} }";
        let items = parse(src);
        let mut seen = Vec::new();
        walk_items(&items, &mut |item, stack| {
            seen.push((item.name.clone(), stack.len()));
        });
        assert!(seen.contains(&("m".to_string(), 1)));
        assert!(seen.contains(&("g".to_string(), 1)));
        assert!(seen.contains(&("A".to_string(), 0)));
    }
}
