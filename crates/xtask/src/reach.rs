//! F2 `panic-reachability`: the serving path's panic surface is a
//! committed, audited allowlist.
//!
//! Starting from the long-running entry points (`minicost serve`,
//! `minicost simulate`, and the supervisor loop), the analysis walks the
//! call graph forward and flags every reachable function whose body can
//! panic:
//!
//! - `unwrap`/`expect` family calls,
//! - panicking macros (`panic!`, `unreachable!`, `todo!`, `unimplemented!`,
//!   and the `assert*!` family — `debug_assert*!` is exempt, it compiles
//!   out of release builds),
//! - indexing / slicing (`x[i]` — slice-pattern panics fold into this
//!   category, both are bounds failures),
//! - remainder by a variable (`a % n` — division-by-zero; float-heavy
//!   `/` is excluded as overwhelmingly non-integral in this workspace).
//!
//! Findings are gated on `xtask-panic-allowlist.json` (repo root): each
//! entry names a function key and the reason its panics are acceptable
//! policy (fail-fast contract, bounds held by construction). Entries have
//! no expiry — deliberate panics are policy, not debt — but entries that
//! match nothing are reported so the file shrinks as code moves. Site-level
//! waivers use `// xtask-allow(panic-reachability): <reason>`.

use crate::flow::{flow_allowed, FlowDiag, FlowKind, FnGraph, SourceFile, Workspace};
use crate::json::Json;
use std::collections::{BTreeMap, VecDeque};
use std::path::Path;

/// Entry points whose transitive callees constitute the serving path.
pub const ROOTS: &[&str] = &["core::serve", "core::simulate", "core::Supervisor::run"];

/// One tolerated panicking function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// Qualified function key (`core::Engine::run_shard`).
    pub function: String,
    /// Why panicking here is acceptable.
    pub reason: String,
}

/// The parsed `xtask-panic-allowlist.json`.
#[derive(Clone, Debug, Default)]
pub struct PanicAllowlist {
    /// All entries, in file order.
    pub entries: Vec<AllowEntry>,
}

impl PanicAllowlist {
    /// Loads `<root>/xtask-panic-allowlist.json`; a missing file is an
    /// empty allowlist, a malformed one is an error.
    pub fn load(root: &Path) -> Result<PanicAllowlist, String> {
        let path = root.join("xtask-panic-allowlist.json");
        match std::fs::read_to_string(&path) {
            Ok(src) => PanicAllowlist::parse(&src).map_err(|e| format!("{}: {e}", path.display())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(PanicAllowlist::default()),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }

    /// Parses `{"entries": [{"function": ..., "reason": ...}, ...]}`.
    pub fn parse(src: &str) -> Result<PanicAllowlist, String> {
        let doc = Json::parse(src)?;
        let entries = doc
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or("panic allowlist must have an `entries` array")?;
        let mut out = Vec::new();
        for (i, e) in entries.iter().enumerate() {
            let field = |name: &str| {
                e.get(name)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or(format!("entry {i}: missing string field `{name}`"))
            };
            let entry = AllowEntry { function: field("function")?, reason: field("reason")? };
            if entry.reason.trim().is_empty() {
                return Err(format!("entry {i}: reason must not be empty"));
            }
            out.push(entry);
        }
        Ok(PanicAllowlist { entries: out })
    }
}

/// Panic-site categories, in report order.
const CATEGORIES: &[&str] = &["unwrap", "panic-macro", "index", "modulo"];

/// Identifiers that legitimately precede `[` without indexing.
const NON_INDEX_PRECEDERS: &[&str] = &[
    "return", "in", "if", "else", "match", "break", "loop", "while", "mut", "ref", "as", "move",
    "dyn", "let", "unsafe", "box",
];

/// Per-category panic-site counts and first lines for one function body.
#[derive(Debug, Default)]
struct Sites {
    /// category -> (count, first line).
    by_cat: BTreeMap<&'static str, (usize, usize)>,
}

impl Sites {
    fn record(&mut self, cat: &'static str, line: usize) {
        let slot = self.by_cat.entry(cat).or_insert((0, line));
        slot.0 += 1;
    }

    fn is_empty(&self) -> bool {
        self.by_cat.is_empty()
    }

    /// `"2 index, 1 unwrap"` in stable category order.
    fn summary(&self) -> String {
        CATEGORIES
            .iter()
            .filter_map(|c| self.by_cat.get(c).map(|(n, _)| format!("{n} {c}")))
            .collect::<Vec<_>>()
            .join(", ")
    }

    fn first_line(&self) -> usize {
        self.by_cat.values().map(|(_, l)| *l).min().unwrap_or(0)
    }
}

/// Scans one body token range for panic sites, honoring site waivers.
fn panic_sites(sf: &SourceFile, start: usize, end: usize) -> Sites {
    let toks = &sf.lexed.toks[start..end.min(sf.lexed.toks.len())];
    let mut sites = Sites::default();
    let mut record = |cat, line| {
        if !flow_allowed(&sf.lexed, FlowKind::PanicReachability, line) {
            sites.record(cat, line);
        }
    };
    for (i, t) in toks.iter().enumerate() {
        let next_is = |p: &str| toks.get(i + 1).is_some_and(|n| n.kind.is_punct(p));
        match &t.kind {
            crate::lexer::TokKind::Ident(id) => match id.as_str() {
                "unwrap" | "expect" | "unwrap_err" | "expect_err" if next_is("(") => {
                    record("unwrap", t.line);
                }
                "panic" | "unreachable" | "todo" | "unimplemented" | "assert" | "assert_eq"
                | "assert_ne"
                    if next_is("!") =>
                {
                    record("panic-macro", t.line);
                }
                _ => {}
            },
            crate::lexer::TokKind::Punct(p) if p == "[" && i > 0 => {
                let indexes = match &toks[i - 1].kind {
                    crate::lexer::TokKind::Ident(id) => !NON_INDEX_PRECEDERS.contains(&id.as_str()),
                    crate::lexer::TokKind::Punct(q) => q == ")" || q == "]",
                    _ => false,
                };
                if indexes {
                    record("index", t.line);
                }
            }
            crate::lexer::TokKind::Punct(p)
                if (p == "%" || p == "%=")
                    && toks.get(i + 1).is_some_and(|n| n.kind.ident().is_some()) =>
            {
                record("modulo", t.line);
            }
            _ => {}
        }
    }
    sites
}

/// Walks the graph from `roots`, flags reachable panicking functions not
/// covered by the allowlist, and reports unused allowlist entries.
pub fn analyze(
    ws: &Workspace,
    g: &FnGraph,
    roots: &[&str],
    allow: &PanicAllowlist,
) -> (Vec<FlowDiag>, Vec<String>) {
    // BFS from the roots, recording the hop parent for traces.
    let mut prev: Vec<Option<usize>> = vec![None; g.nodes.len()];
    let mut root_of: Vec<Option<usize>> = vec![None; g.nodes.len()];
    let mut queue = VecDeque::new();
    for key in roots {
        if let Some(ix) = g.by_key(key) {
            if root_of[ix].is_none() {
                root_of[ix] = Some(ix);
                queue.push_back(ix);
            }
        }
    }
    while let Some(ix) = queue.pop_front() {
        for &c in &g.nodes[ix].callees {
            if root_of[c].is_none() {
                root_of[c] = root_of[ix];
                prev[c] = Some(ix);
                queue.push_back(c);
            }
        }
    }

    let mut used = vec![false; allow.entries.len()];
    let mut diags = Vec::new();
    for (ix, node) in g.nodes.iter().enumerate() {
        let Some(root_ix) = root_of[ix] else { continue };
        let Some((start, end)) = node.body else { continue };
        let sf = &ws.files[node.file_ix];
        let sites = panic_sites(sf, start, end);
        if sites.is_empty() {
            continue;
        }
        if let Some(pos) = allow.entries.iter().position(|e| e.function == node.key) {
            used[pos] = true;
            continue;
        }
        // Trace: root -> ... -> this function.
        let mut path = vec![ix];
        while let Some(p) = prev[*path.last().unwrap_or(&ix)] {
            path.push(p);
        }
        path.reverse();
        let trace: Vec<String> = path
            .iter()
            .map(|&step| {
                let role = if step == ix { "panics in" } else { "calls" };
                format!("{role} {}", g.label(ws, step))
            })
            .collect();
        diags.push(FlowDiag {
            kind: FlowKind::PanicReachability,
            file: sf.file.clone(),
            line: sites.first_line(),
            symbol: node.key.clone(),
            message: format!(
                "can panic ({}) and is reachable from `{}` ({} hop(s)); fix, waive the site, \
                 or add an `xtask-panic-allowlist.json` entry",
                sites.summary(),
                g.nodes[root_ix].key,
                path.len().saturating_sub(1),
            ),
            trace,
        });
    }
    let warnings = allow
        .entries
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(e, _)| format!("unused panic-allowlist entry: {} ({})", e.function, e.reason))
        .collect();
    (diags, warnings)
}
