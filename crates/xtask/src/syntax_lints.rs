//! The five syntax-aware lints (L5–L9) built on the item parser.
//!
//! L5 `hashmap-iter-determinism`, L6 `float-reduction-order`, and L7
//! `narrowing-cast-audit` protect the bit-determinism contract of the A3C
//! audit (DESIGN.md §7): unordered iteration, order-sensitive float
//! reductions, and silently wrapping casts are the three classic ways a
//! "deterministic" cost ledger diverges between runs. L8
//! `exhaustive-tier-match` makes adding a fourth storage tier a
//! compile-gated event, and L9 `pub-api-doc-coverage` keeps the exported
//! surface documented.
//!
//! All functions return `(line, message)` pairs; `xtask-allow` filtering and
//! crate scoping happen in [`crate::lints::scan_source`].

use crate::lexer::{Tok, TokKind};
use crate::lints::Marks;
use crate::parser::{walk_items, Item, ItemKind, Vis};
use std::collections::BTreeSet;

/// Methods that iterate a hash collection in nondeterministic order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "into_keys",
    "into_values",
];

/// Reduction adapters whose result depends on iteration order for floats.
const FLOAT_REDUCERS: &[&str] = &["sum", "product", "fold", "reduce", "rfold"];

/// Integer targets an `as` cast can silently truncate into.
const NARROW_INT_TYPES: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Enums whose matches must stay wildcard-free so a new storage tier (or
/// tier-change action) becomes a compile-gated event.
const TIER_ENUMS: &[&str] = &["Tier", "TierAction", "TierChange"];

/// Collects names bound to `HashMap`/`HashSet` values inside one token
/// range: `let m = HashMap::new()`, `m: HashMap<..>` (params/fields), and
/// `let m = ...collect::<HashMap<..>>()`.
fn hash_bindings(toks: &[Tok], marks: &Marks, range: (usize, usize)) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for i in range.0..range.1.min(toks.len()) {
        if marks.in_test[i] {
            continue;
        }
        let Some(id) = toks[i].kind.ident() else { continue };
        if id != "HashMap" && id != "HashSet" {
            continue;
        }
        // Walk back to the binding this hash type belongs to.
        // Case A: `NAME : [&] [mut] HashMap` (annotation).
        let mut j = i;
        while j >= 1 && matches!(&toks[j - 1].kind, TokKind::Punct(p) if p == "&" || p == "<") {
            j -= 1;
        }
        if j >= 2 && toks[j - 1].kind.is_punct(":") {
            if let Some(name) = toks[j - 2].kind.ident() {
                out.insert(name.to_string());
                continue;
            }
        }
        // Case B: `let [mut] NAME ... = ... HashMap ...` within a statement
        // (covers `HashMap::new()` and `collect::<HashMap<..>>()`).
        let stmt_start = toks[range.0..i]
            .iter()
            .rposition(|t| t.kind.is_punct(";") || t.kind.is_punct("{") || t.kind.is_punct("}"))
            .map_or(range.0, |p| range.0 + p + 1);
        let stmt = &toks[stmt_start..i];
        let Some(let_pos) = stmt.iter().position(|t| t.kind.ident() == Some("let")) else {
            continue;
        };
        let mut k = let_pos + 1;
        if stmt.get(k).and_then(|t| t.kind.ident()) == Some("mut") {
            k += 1;
        }
        if let Some(name) = stmt.get(k).and_then(|t| t.kind.ident()) {
            out.insert(name.to_string());
        }
    }
    out
}

/// Token ranges `[signature start, body end)` of every non-test function
/// with a body, so binding names are scoped to the function that declares
/// them (a `BTreeMap` named `m` in one fn must not inherit a hash taint
/// from an `m: HashMap` in another).
fn fn_regions(items: &[Item]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    walk_items(items, &mut |item, _| {
        if item.kind == ItemKind::Fn && !item.in_test {
            if let Some((_, body_end)) = item.body {
                out.push((item.start_tok, body_end));
            }
        }
    });
    out
}

/// The hash-typed binding iterated at token `i` (an ident), if any: either a
/// local binding `name.` / `for _ in name`, or a field access `self.name`.
fn hash_target<'a>(
    toks: &'a [Tok],
    i: usize,
    local: &BTreeSet<String>,
    fields: &BTreeSet<String>,
) -> Option<&'a str> {
    let id = toks[i].kind.ident()?;
    let via_self = i >= 2
        && toks[i - 1].kind.is_punct(".")
        && toks[i - 2].kind.ident() == Some("self")
        && fields.contains(id);
    if local.contains(id) || via_self {
        Some(id)
    } else {
        None
    }
}

/// L5: flags iteration over values bound to `HashMap`/`HashSet` in non-test
/// code — method iteration (`.iter()`, `.keys()`, ...) and `for _ in [&]name`.
pub fn lint_hashmap_iter(toks: &[Tok], marks: &Marks, items: &[Item]) -> Vec<(usize, String)> {
    // Field/param annotations anywhere in the file back `self.name` accesses.
    let fields = hash_bindings(toks, marks, (0, toks.len()));
    let mut out = Vec::new();
    for region in fn_regions(items) {
        let local = hash_bindings(toks, marks, region);
        if local.is_empty() && fields.is_empty() {
            continue;
        }
        for i in region.0..region.1.min(toks.len()) {
            if marks.in_test[i] {
                continue;
            }
            let t = &toks[i];
            let Some(id) = t.kind.ident() else { continue };
            // `name.iter()` / `self.name.keys()` / ...
            if toks.get(i + 1).is_some_and(|t| t.kind.is_punct("."))
                && toks
                    .get(i + 2)
                    .and_then(|t| t.kind.ident())
                    .is_some_and(|m| HASH_ITER_METHODS.contains(&m))
                && toks.get(i + 3).is_some_and(|t| t.kind.is_punct("("))
                && hash_target(toks, i, &local, &fields).is_some()
            {
                let method = toks[i + 2].kind.ident().unwrap_or_default();
                out.push((
                    t.line,
                    format!(
                        "iterating hash collection `{id}` via `.{method}()` yields \
                         nondeterministic order; use BTreeMap/BTreeSet or collect and sort"
                    ),
                ));
                continue;
            }
            // `for pat in [&][mut] [self.]name`
            if id == "in" {
                let mut j = i + 1;
                while toks
                    .get(j)
                    .is_some_and(|t| t.kind.is_punct("&") || t.kind.ident() == Some("mut"))
                {
                    j += 1;
                }
                if toks.get(j).is_some_and(|t| t.kind.ident() == Some("self"))
                    && toks.get(j + 1).is_some_and(|t| t.kind.is_punct("."))
                {
                    j += 2;
                }
                if let Some(name) = toks.get(j).and_then(|t| t.kind.ident()) {
                    let iterated_directly = toks
                        .get(j + 1)
                        .is_none_or(|t| t.kind.is_punct("{") || t.kind.is_punct("."));
                    if iterated_directly && hash_target(toks, j, &local, &fields).is_some() {
                        out.push((
                            toks[j].line,
                            format!(
                                "`for` loop over hash collection `{name}` yields \
                                 nondeterministic order; use BTreeMap/BTreeSet or collect and sort"
                            ),
                        ));
                    }
                }
            }
        }
    }
    out
}

/// L6: flags float reductions (`sum`/`product`/`fold`/`reduce`) chained off
/// unordered (hash) iteration inside one statement — the sum of `f64`s is
/// order-dependent, so gradient/reward accumulation must iterate in a fixed
/// order.
pub fn lint_float_reduction(toks: &[Tok], marks: &Marks, items: &[Item]) -> Vec<(usize, String)> {
    let fields = hash_bindings(toks, marks, (0, toks.len()));
    let mut out = Vec::new();
    for region in fn_regions(items) {
        let local = hash_bindings(toks, marks, region);
        if local.is_empty() && fields.is_empty() {
            continue;
        }
        for i in region.0..region.1.min(toks.len()) {
            if marks.in_test[i] {
                continue;
            }
            let Some(id) = toks[i].kind.ident() else { continue };
            if !toks.get(i + 1).is_some_and(|t| t.kind.is_punct("."))
                || hash_target(toks, i, &local, &fields).is_none()
            {
                continue;
            }
            // Scan the rest of the statement for a reduction adapter.
            for j in i + 2..region.1.min(toks.len()) {
                match &toks[j].kind {
                    TokKind::Punct(p) if p == ";" => break,
                    TokKind::Ident(m)
                        if FLOAT_REDUCERS.contains(&m.as_str())
                            && toks[j - 1].kind.is_punct(".")
                            && toks
                                .get(j + 1)
                                .is_some_and(|t| t.kind.is_punct("(") || t.kind.is_punct("::")) =>
                    {
                        out.push((
                            toks[i].line,
                            format!(
                                "`.{m}(..)` over unordered iteration of `{id}`: f64 reduction \
                                 order changes the result bit pattern; iterate a sorted \
                                 collection instead"
                            ),
                        ));
                        break;
                    }
                    _ => {}
                }
            }
        }
    }
    out
}

/// L7: flags `expr as u8/u16/u32/i8/i16/i32` in non-test code — these casts
/// wrap silently at the boundary (op counters, byte sizes, tick indices).
/// Literal casts (`3 as u32`) are exempt: the value is visible at the site.
pub fn lint_narrowing_cast(toks: &[Tok], marks: &Marks) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if marks.in_test[i] {
            continue;
        }
        if t.kind.ident() != Some("as") {
            continue;
        }
        let Some(ty) = toks.get(i + 1).and_then(|t| t.kind.ident()) else { continue };
        if !NARROW_INT_TYPES.contains(&ty) {
            continue;
        }
        // `use x as y` renames, not casts.
        if i >= 1 && matches!(toks[i - 1].kind, TokKind::Num) {
            continue;
        }
        out.push((
            t.line,
            format!(
                "`as {ty}` can silently truncate; use `try_from`/`try_into` with an \
                 explicit saturation policy (or document an allow)"
            ),
        ));
    }
    out
}

/// L8: flags `match` bodies that pattern-match `Tier::`-style variants but
/// keep a `_` wildcard arm — adding a fourth tier must be a compile error,
/// not a silently absorbed case.
pub fn lint_tier_match(toks: &[Tok], marks: &Marks) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if marks.in_test[i] || toks[i].kind.ident() != Some("match") {
            i += 1;
            continue;
        }
        let match_line = toks[i].line;
        // Body `{` is the first brace at paren depth 0 (struct literals are
        // not legal in scrutinee position without parens).
        let mut j = i + 1;
        let mut paren = 0usize;
        let open = loop {
            match toks.get(j).map(|t| &t.kind) {
                None => break None,
                Some(TokKind::Punct(p)) if p == "(" || p == "[" => paren += 1,
                Some(TokKind::Punct(p)) if p == ")" || p == "]" => {
                    paren = paren.saturating_sub(1);
                }
                Some(TokKind::Punct(p)) if p == "{" && paren == 0 => break Some(j),
                Some(TokKind::Punct(p)) if p == ";" => break None,
                _ => {}
            }
            j += 1;
        };
        let Some(open) = open else {
            i += 1;
            continue;
        };
        // Scan the body at depth 1 for (a) tier-enum patterns directly
        // followed by `=>` (within a short pattern window) and (b) `_` arms.
        let mut depth = 0usize;
        let mut k = open;
        let mut has_tier_pattern = false;
        let mut wildcard_line = None;
        while k < toks.len() {
            match &toks[k].kind {
                TokKind::Punct(p) if p == "{" => depth += 1,
                TokKind::Punct(p) if p == "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Ident(id)
                    if depth == 1
                        && TIER_ENUMS.contains(&id.as_str())
                        && toks.get(k + 1).is_some_and(|t| t.kind.is_punct("::"))
                        && arm_arrow_follows(toks, k + 2) =>
                {
                    has_tier_pattern = true;
                }
                TokKind::Ident(id)
                    if depth == 1
                        && id == "_"
                        && wildcard_line.is_none()
                        && arm_arrow_follows(toks, k + 1) =>
                {
                    wildcard_line = Some(toks[k].line);
                }
                _ => {}
            }
            k += 1;
        }
        if has_tier_pattern {
            if let Some(line) = wildcard_line {
                out.push((
                    line,
                    format!(
                        "`_` wildcard arm in a tier match (opened line {match_line}): list \
                         every variant so adding a tier is a compile-gated event"
                    ),
                ));
            }
        }
        i = open + 1;
    }
    out
}

/// True when an arm arrow `=>` follows within a short pattern window
/// (allowing path segments, or-patterns, bindings, and `if` guards).
fn arm_arrow_follows(toks: &[Tok], from: usize) -> bool {
    const WINDOW: usize = 16;
    let mut paren = 0usize;
    for t in toks.iter().take((from + WINDOW).min(toks.len())).skip(from) {
        match &t.kind {
            TokKind::Punct(p) if p == "=>" && paren == 0 => return true,
            TokKind::Punct(p) if p == "(" || p == "[" => paren += 1,
            TokKind::Punct(p) if p == ")" || p == "]" => paren = paren.saturating_sub(1),
            // A block, statement end, nested match body, or arm separator
            // means we drifted out of pattern position into an expression.
            TokKind::Punct(p) if p == "{" || p == "}" || p == ";" => return false,
            TokKind::Punct(p) if p == "," && paren == 0 => return false,
            _ => {}
        }
    }
    false
}

/// L9: every bare-`pub` item in library code carries an outer doc comment.
/// `use`, `impl` blocks, enum variants, and macros are exempt, as are items
/// nested inside non-`pub` inline modules.
pub fn lint_pub_doc(items: &[Item]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    walk_items(items, &mut |item, stack| {
        if item.vis != Vis::Pub
            || item.in_test
            || item.has_doc
            || matches!(
                item.kind,
                ItemKind::Use | ItemKind::Impl | ItemKind::Variant | ItemKind::Macro
            )
        {
            return;
        }
        // `pub mod foo;` file modules document themselves with `//!` inner
        // docs; only inline `pub mod { .. }` bodies need an outer doc here.
        if item.kind == ItemKind::Mod && item.body.is_none() {
            return;
        }
        // Inline `mod detail { pub fn f() }` with a private mod is not API.
        if stack.iter().any(|a| a.kind == ItemKind::Mod && a.vis != Vis::Pub) {
            return;
        }
        out.push((
            item.line,
            format!(
                "public {} `{}` has no doc comment; every exported item documents \
                 its contract",
                item.kind.label(),
                item.name
            ),
        ));
    });
    out
}

#[cfg(test)]
mod tests {
    use crate::lints::{scan_source, FileContext, Lint, Violation};
    use std::path::PathBuf;

    fn scan(src: &str, crate_name: &str) -> Vec<Violation> {
        let ctx = FileContext { crate_name: crate_name.to_string(), is_bin: false };
        scan_source(&PathBuf::from("mem.rs"), src, &ctx)
    }

    #[test]
    fn l5_flags_hashmap_method_iteration() {
        let src = r"
            use std::collections::HashMap;
            fn f(m: &HashMap<u32, u64>) -> Vec<u64> {
                m.values().copied().collect()
            }
        ";
        let v = scan(src, "core");
        assert!(v.iter().any(|v| v.lint == Lint::HashmapIterDeterminism), "{v:?}");
    }

    #[test]
    fn l5_flags_for_loop_over_hashset() {
        let src = r"
            fn f() {
                let mut s = std::collections::HashSet::new();
                s.insert(1u32);
                for x in &s {
                    drop(x);
                }
            }
        ";
        let v = scan(src, "trace");
        assert!(v.iter().any(|v| v.lint == Lint::HashmapIterDeterminism), "{v:?}");
    }

    #[test]
    fn l5_silent_on_btreemap_and_lookup_only_use() {
        let src = r"
            use std::collections::{BTreeMap, HashMap};
            fn f(m: &HashMap<u32, u64>, b: &BTreeMap<u32, u64>) -> u64 {
                let hit = m.get(&1).copied().unwrap_or(0);
                hit + b.values().sum::<u64>()
            }
        ";
        assert!(scan(src, "core").is_empty(), "{:?}", scan(src, "core"));
    }

    #[test]
    fn l5_exempt_in_tests_and_bins() {
        let src = r"
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() {
                    let m: std::collections::HashMap<u8, u8> = Default::default();
                    for x in m.iter() { drop(x); }
                }
            }
        ";
        assert!(scan(src, "core").is_empty());
        let src_bin = "fn main() { let m: HashMap<u8,u8> = HashMap::new(); for x in &m {} }";
        let ctx = FileContext { crate_name: "core".to_string(), is_bin: true };
        assert!(scan_source(&PathBuf::from("bin.rs"), src_bin, &ctx)
            .iter()
            .all(|v| v.lint != Lint::HashmapIterDeterminism));
    }

    #[test]
    fn l5_bindings_are_scoped_per_function() {
        // `by_id` is a HashMap in one fn and a BTreeMap in another; only the
        // HashMap one may be flagged.
        let src = r"
            use std::collections::{BTreeMap, HashMap};
            fn hashed(by_id: &HashMap<u32, u64>) -> Vec<u64> {
                by_id.values().copied().collect()
            }
            fn sorted(by_id: &BTreeMap<u32, u64>) -> Vec<u64> {
                by_id.values().copied().collect()
            }
        ";
        let v = scan(src, "core");
        let l5: Vec<_> = v.iter().filter(|v| v.lint == Lint::HashmapIterDeterminism).collect();
        assert_eq!(l5.len(), 1, "{v:?}");
        assert_eq!(l5[0].line, 4, "only the HashMap fn is flagged: {v:?}");
    }

    #[test]
    fn l5_flags_iteration_over_self_fields() {
        let src = r"
            use std::collections::HashMap;
            struct Pool {
                members: HashMap<u32, u64>,
            }
            impl Pool {
                fn drain_all(&mut self) -> Vec<u64> {
                    self.members.drain().map(|(_, v)| v).collect()
                }
            }
        ";
        let v = scan(src, "trace");
        assert!(v.iter().any(|v| v.lint == Lint::HashmapIterDeterminism), "{v:?}");
    }

    #[test]
    fn l6_flags_sum_over_hash_values() {
        let src = r"
            use std::collections::HashMap;
            fn grad_norm(grads: &HashMap<u32, f64>) -> f64 {
                grads.values().map(|g| g * g).sum::<f64>()
            }
        ";
        let v = scan(src, "nn");
        assert!(v.iter().any(|v| v.lint == Lint::FloatReductionOrder), "{v:?}");
    }

    #[test]
    fn l6_silent_on_ordered_sum_and_outside_nn_rl() {
        let ordered = "fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }";
        assert!(scan(ordered, "nn").iter().all(|v| v.lint != Lint::FloatReductionOrder));
        let hash = r"
            use std::collections::HashMap;
            fn f(m: &HashMap<u32, f64>) -> f64 { m.values().sum::<f64>() }
        ";
        assert!(scan(hash, "forecast").iter().all(|v| v.lint != Lint::FloatReductionOrder));
    }

    #[test]
    fn l7_flags_narrowing_casts() {
        let src = "fn f(ops: u64) -> u32 { ops as u32 }";
        let v = scan(src, "pricing");
        assert!(v.iter().any(|v| v.lint == Lint::NarrowingCastAudit), "{v:?}");
    }

    #[test]
    fn l7_exempts_widening_literals_and_other_crates() {
        let widening = "fn f(x: u32) -> u64 { x as u64 }";
        assert!(scan(widening, "core").is_empty(), "widening is fine");
        let literal = "const N: u32 = 3; fn f() -> u32 { 7 as u32 }";
        assert!(scan(literal, "core").is_empty(), "literal casts are visible");
        let other = "fn f(x: u64) -> u32 { x as u32 }";
        assert!(scan(other, "nn").is_empty(), "nn is out of L7 scope");
    }

    #[test]
    fn l8_flags_wildcard_in_tier_match() {
        let src = r"
            fn f(t: Tier) -> u8 {
                match t {
                    Tier::Hot => 0,
                    _ => 1,
                }
            }
        ";
        let v = scan(src, "core");
        assert!(v.iter().any(|v| v.lint == Lint::ExhaustiveTierMatch), "{v:?}");
    }

    #[test]
    fn l8_allows_exhaustive_and_non_tier_wildcards() {
        let exhaustive = r"
            fn f(t: Tier) -> u8 {
                match t {
                    Tier::Hot => 0,
                    Tier::Cool => 1,
                    Tier::Archive => 2,
                }
            }
        ";
        assert!(scan(exhaustive, "core").is_empty(), "{:?}", scan(exhaustive, "core"));
        let non_tier = r"
            fn f(x: u8) -> Tier {
                match x {
                    0 => Tier::Hot,
                    _ => Tier::Cool,
                }
            }
        ";
        assert!(
            scan(non_tier, "core").is_empty(),
            "Tier in arm *expressions* must not trigger: {:?}",
            scan(non_tier, "core")
        );
    }

    #[test]
    fn l8_flags_wildcard_with_guard() {
        let src = r"
            fn f(t: Tier, x: u8) -> u8 {
                match t {
                    Tier::Hot if x > 0 => 0,
                    Tier::Hot => 1,
                    _ if x > 2 => 2,
                    _ => 3,
                }
            }
        ";
        let v = scan(src, "rl");
        assert!(v.iter().any(|v| v.lint == Lint::ExhaustiveTierMatch), "{v:?}");
    }

    #[test]
    fn l9_flags_undocumented_pub_items() {
        let src = "pub fn undocumented() {}\n/// Doc.\npub fn documented() {}\n";
        let v = scan(src, "forecast");
        assert_eq!(v.iter().filter(|v| v.lint == Lint::PubApiDocCoverage).count(), 1, "{v:?}");
        assert!(v[0].message.contains("undocumented"));
    }

    #[test]
    fn l9_exempts_scoped_private_and_test_items() {
        let src = r"
            pub(crate) fn scoped() {}
            fn private() {}
            mod detail { pub fn inner() {} }
            #[cfg(test)]
            mod tests { pub fn helper() {} }
        ";
        assert!(scan(src, "rl").is_empty(), "{:?}", scan(src, "rl"));
    }

    #[test]
    fn l9_covers_impl_methods() {
        let src = r"
            /// Doc.
            pub struct S;
            impl S {
                pub fn no_doc(&self) {}
                /// Doc.
                pub fn with_doc(&self) {}
            }
        ";
        let v = scan(src, "pricing");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("no_doc"));
    }

    #[test]
    fn allow_comment_suppresses_new_lints() {
        let src = "fn f(x: u64) -> u32 { x as u32 } // xtask-allow(narrowing-cast-audit): bounded";
        assert!(scan(src, "core").is_empty());
    }
}
