//! F1 `determinism-taint`: nondeterministic inputs must not reach
//! decision or billing sinks.
//!
//! A function is a **source** when its body reads the wall clock
//! (`SystemTime::now`, `Instant::now`), OS entropy (`thread_rng`,
//! `from_entropy`, `from_os_rng`, `OsRng`, `rand::rng`), the environment
//! (`env::var`/`var_os`/`vars`), thread identity (`thread::current`,
//! `ThreadId`), or iterates an unordered map (the L5 lint's findings,
//! mapped to their containing function). A function is **tainted** when it
//! is a source or (transitively) calls one. The diagnostic fires on every
//! tainted **sink**: the `Policy::decide_*` family and the billing,
//! checkpoint, and fault-decision containers, whose outputs the paper's
//! reproducibility claims depend on.
//!
//! Escape hatch: `// xtask-allow(determinism-taint): <reason>` on a source
//! line declares that read benign (log-only timestamps, say); on a sink's
//! definition line it waives the sink. Both require a justification (L10).

use crate::flow::{flow_allowed, FlowDiag, FlowKind, FnGraph, FnNode, SourceFile, Workspace};
use crate::lints::{scan_source, FileContext, Lint};
use std::path::Path;

/// Sink function names: every impl of the `Policy` decision family.
const SINK_FNS: &[&str] = &["decide_one", "decide_batch", "decide_batch_into", "decide_fleet"];

/// Sink containers: any method of these types is a sink (billing
/// arithmetic, snapshot serialization, fault-plan fire decisions).
const SINK_PREFIXES: &[&str] =
    &["CostLedger::", "CostBreakdown::", "Money::", "Snapshot::", "FaultInjector::", "FaultPlan::"];

/// One nondeterminism read site inside a function body.
#[derive(Clone, Debug)]
pub struct Source {
    /// 1-based line of the read.
    pub line: usize,
    /// What was read (`SystemTime::now()`, ...).
    pub what: String,
}

/// Result of the taint pass, kept for diagnostics and the DOT export.
pub struct Taint {
    /// Per-node direct sources (empty for most nodes).
    pub sources: Vec<Vec<Source>>,
    /// Per-node verdict: contains a source or calls a tainted function.
    pub tainted: Vec<bool>,
}

/// True when this function is a determinism sink.
pub fn is_sink(node: &FnNode) -> bool {
    if SINK_FNS.contains(&node.name.as_str()) {
        return true;
    }
    let qual = node.key.split_once("::").map_or(node.key.as_str(), |(_, rest)| rest);
    SINK_PREFIXES.iter().any(|p| qual.starts_with(p))
}

/// Scans one body token range for direct nondeterminism reads.
fn scan_sources(sf: &SourceFile, start: usize, end: usize, out: &mut Vec<Source>) {
    let toks = &sf.lexed.toks[start..end.min(sf.lexed.toks.len())];
    let ident = |i: usize| toks.get(i).and_then(|t| t.kind.ident());
    let punct = |i: usize, p: &str| toks.get(i).is_some_and(|t| t.kind.is_punct(p));
    for (i, t) in toks.iter().enumerate() {
        let Some(id) = t.kind.ident() else { continue };
        let what = match id {
            // `SystemTime::now()` / `Instant::now()`.
            "SystemTime" | "Instant" if punct(i + 1, "::") && ident(i + 2) == Some("now") => {
                format!("{id}::now()")
            }
            // OS entropy; bare `rand::rng()` is matched at the `rand` token.
            "thread_rng" | "from_entropy" | "from_os_rng" if punct(i + 1, "(") => format!("{id}()"),
            "OsRng" => "OsRng".to_string(),
            "rand" if punct(i + 1, "::") && ident(i + 2) == Some("rng") && punct(i + 3, "(") => {
                "rand::rng()".to_string()
            }
            // Environment reads (`env!` the macro is compile-time, and is
            // lexed as `env` `!`, which this `::` pattern never matches).
            "env"
                if punct(i + 1, "::")
                    && matches!(ident(i + 2), Some("var" | "var_os" | "vars")) =>
            {
                format!("env::{}()", ident(i + 2).unwrap_or_default())
            }
            // Thread identity.
            "thread" if punct(i + 1, "::") && ident(i + 2) == Some("current") => {
                "thread::current()".to_string()
            }
            "ThreadId" => "ThreadId".to_string(),
            _ => continue,
        };
        if !flow_allowed(&sf.lexed, FlowKind::DeterminismTaint, t.line) {
            out.push(Source { line: t.line, what });
        }
    }
}

/// Computes per-function sources and the transitive taint closure.
pub fn compute(ws: &Workspace, g: &FnGraph) -> Taint {
    let mut sources: Vec<Vec<Source>> = vec![Vec::new(); g.nodes.len()];
    for (ix, node) in g.nodes.iter().enumerate() {
        if let Some((start, end)) = node.body {
            scan_sources(&ws.files[node.file_ix], start, end, &mut sources[ix]);
        }
    }
    // Unordered-map iteration: rerun L5 per file and map each finding to
    // the function whose body line range contains it.
    for (file_ix, sf) in ws.files.iter().enumerate() {
        let path = Path::new(&sf.file);
        let ctx = FileContext::from_path(path);
        for v in scan_source(path, &sf.src, &ctx) {
            if v.lint != Lint::HashmapIterDeterminism {
                continue;
            }
            if let Some(ix) = containing_fn(ws, g, file_ix, v.line) {
                sources[ix].push(Source { line: v.line, what: "unordered-map iteration".into() });
            }
        }
    }
    // Fixpoint: taint flows callee -> caller.
    let mut tainted = vec![false; g.nodes.len()];
    let mut work: Vec<usize> = Vec::new();
    for (ix, s) in sources.iter().enumerate() {
        if !s.is_empty() {
            tainted[ix] = true;
            work.push(ix);
        }
    }
    while let Some(ix) = work.pop() {
        for &caller in &g.callers[ix] {
            if !tainted[caller] {
                tainted[caller] = true;
                work.push(caller);
            }
        }
    }
    Taint { sources, tainted }
}

/// The node in `file_ix` whose body's line span contains `line`, preferring
/// the innermost (latest-starting) match.
fn containing_fn(ws: &Workspace, g: &FnGraph, file_ix: usize, line: usize) -> Option<usize> {
    let toks = &ws.files[file_ix].lexed.toks;
    g.nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.file_ix == file_ix)
        .filter(|(_, n)| {
            n.body.is_some_and(|(s, e)| {
                let first = toks.get(s).map_or(0, |t| t.line);
                let last = toks.get(e.saturating_sub(1)).map_or(0, |t| t.line);
                first <= line && line <= last
            })
        })
        .max_by_key(|(_, n)| n.line)
        .map(|(ix, _)| ix)
}

/// Shortest sink-to-source call path, as trace lines for the diagnostic.
fn trace_to_source(ws: &Workspace, g: &FnGraph, t: &Taint, sink: usize) -> Vec<String> {
    let mut prev: Vec<Option<usize>> = vec![None; g.nodes.len()];
    let mut queue = std::collections::VecDeque::from([sink]);
    let mut seen = vec![false; g.nodes.len()];
    seen[sink] = true;
    let mut found = None;
    'bfs: while let Some(ix) = queue.pop_front() {
        if !t.sources[ix].is_empty() {
            found = Some(ix);
            break 'bfs;
        }
        for &c in &g.nodes[ix].callees {
            if t.tainted[c] && !seen[c] {
                seen[c] = true;
                prev[c] = Some(ix);
                queue.push_back(c);
            }
        }
    }
    let Some(src_ix) = found else { return Vec::new() };
    let mut path = vec![src_ix];
    while let Some(p) = prev[*path.last().unwrap_or(&sink)] {
        path.push(p);
    }
    path.reverse(); // sink first
    let mut out: Vec<String> =
        path.iter().map(|&ix| format!("calls {}", g.label(ws, ix))).collect();
    out[0] = format!("sink {}", g.label(ws, sink));
    if let Some(s) = t.sources[src_ix].first() {
        out.push(format!(
            "reads {} at {}:{}",
            s.what, ws.files[g.nodes[src_ix].file_ix].file, s.line
        ));
    }
    out
}

/// One diagnostic per tainted, un-waived sink.
pub fn diagnostics(ws: &Workspace, g: &FnGraph, t: &Taint) -> Vec<FlowDiag> {
    let mut out = Vec::new();
    for (ix, node) in g.nodes.iter().enumerate() {
        if !t.tainted[ix] || !is_sink(node) {
            continue;
        }
        let sf = &ws.files[node.file_ix];
        if flow_allowed(&sf.lexed, FlowKind::DeterminismTaint, node.line) {
            continue;
        }
        let trace = trace_to_source(ws, g, t, ix);
        let via = trace.len().saturating_sub(2);
        let message = if t.sources[ix].is_empty() {
            format!("nondeterministic input reaches this sink through {via} call hop(s)")
        } else {
            let s = &t.sources[ix][0];
            format!("sink reads {} directly at line {}", s.what, s.line)
        };
        out.push(FlowDiag {
            kind: FlowKind::DeterminismTaint,
            file: sf.file.clone(),
            line: node.line,
            symbol: node.key.clone(),
            message,
            trace,
        });
    }
    out
}

/// Graphviz DOT export of the tainted subgraph: sources are filled boxes,
/// sinks double octagons, edges follow the caller -> callee direction.
pub fn dot(ws: &Workspace, g: &FnGraph, t: &Taint) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("digraph determinism_taint {\n    rankdir=LR;\n");
    for (ix, node) in g.nodes.iter().enumerate() {
        if !t.tainted[ix] {
            continue;
        }
        let shape = if is_sink(node) {
            "doubleoctagon"
        } else if t.sources[ix].is_empty() {
            "ellipse"
        } else {
            "box"
        };
        let style = if t.sources[ix].is_empty() { "" } else { ", style=filled" };
        let _ = writeln!(
            out,
            "    \"{}\" [shape={shape}{style}, label=\"{}\\n{}:{}\"];",
            node.key, node.key, ws.files[node.file_ix].file, node.line
        );
    }
    for (ix, node) in g.nodes.iter().enumerate() {
        if !t.tainted[ix] {
            continue;
        }
        for &c in &node.callees {
            if t.tainted[c] {
                let _ = writeln!(out, "    \"{}\" -> \"{}\";", node.key, g.nodes[c].key);
            }
        }
    }
    out.push_str("}\n");
    out
}
