//! F4 `unit-dimensions`: abstract interpretation of billing arithmetic
//! over a dimension lattice (DESIGN.md §13).
//!
//! The paper's cost model (Eqs. 6–9) mixes $/GB·month storage rates,
//! $-per-operation request rates, $/GB retrieval charges, and a
//! days-per-month proration; a single silent unit slip corrupts every
//! ledger while staying bit-deterministic, invisible to the equivalence
//! tests. This analysis derives a physical dimension for every expression
//! it can understand and rejects:
//!
//! - additions/subtractions of unequal dimensions,
//! - comparisons across dimensions,
//! - any value flowing into a `Money` constructor whose derived dimension
//!   is neither `$` nor `$/day` (the one-day charging quantum).
//!
//! Dimensions come from three places, in priority order: `xtask-unit:`
//! doc declarations ([`crate::lexer::UnitDecl`]), a small inference table
//! for well-named identifiers (`size_gb`, `reads`, ...), and
//! interprocedural propagation of callee return dimensions to a fixpoint
//! (the F1 worklist pattern). Numeric literals are polymorphic — they
//! adopt the other operand's dimension — and anything the evaluator does
//! not understand is `Unknown`, which absorbs through `*`/`/` and passes
//! through `+` without firing, so the analysis errs toward silence, never
//! toward false alarms.
//!
//! Escape hatch: `// xtask-allow(unit-dimensions): <reason>` on the
//! offending line.

use crate::flow::{flow_allowed, FlowDiag, FlowKind, FnGraph, SourceFile, Workspace};
use crate::lexer::{Tok, TokKind};
use crate::parser::{walk_items, ItemKind};
use std::collections::BTreeMap;
use std::fmt;

/// Base units, in exponent-vector order.
const BASES: [&str; 5] = ["$", "GB", "month", "day", "ops"];

/// A physical dimension: integer exponents over the base units.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub struct Dim {
    exps: [i8; 5],
}

impl Dim {
    /// The trivial dimension (pure numbers, ratios, one-hot features).
    pub const DIMENSIONLESS: Dim = Dim { exps: [0, 0, 0, 0, 0] };
    /// Dollars — the only dimension a ledger may ultimately hold.
    pub const DOLLAR: Dim = Dim { exps: [1, 0, 0, 0, 0] };
    /// Dollars per day — the one-day charging quantum `storage_day`
    /// produces; accepted at `Money` sinks alongside plain `$`.
    pub const DOLLAR_PER_DAY: Dim = Dim { exps: [1, 0, 0, -1, 0] };

    fn checked(exps: [i16; 5]) -> Option<Dim> {
        let mut out = [0i8; 5];
        for (o, e) in out.iter_mut().zip(exps) {
            *o = i8::try_from(e).ok()?;
        }
        Some(Dim { exps: out })
    }

    /// Product of two dimensions (exponents add).
    fn mul(self, o: Dim) -> Option<Dim> {
        let mut exps = [0i16; 5];
        for (i, e) in exps.iter_mut().enumerate() {
            *e = i16::from(self.exps[i]) + i16::from(o.exps[i]);
        }
        Dim::checked(exps)
    }

    /// Quotient of two dimensions (exponents subtract).
    fn div(self, o: Dim) -> Option<Dim> {
        let mut exps = [0i16; 5];
        for (i, e) in exps.iter_mut().enumerate() {
            *e = i16::from(self.exps[i]) - i16::from(o.exps[i]);
        }
        Dim::checked(exps)
    }
}

impl fmt::Display for Dim {
    /// Renders `$/GB·month`, `GB`, or `1` for the trivial dimension.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut num = String::new();
        let mut den = String::new();
        for (i, &e) in self.exps.iter().enumerate() {
            let (side, reps) = match e.cmp(&0) {
                std::cmp::Ordering::Greater => (&mut num, e),
                std::cmp::Ordering::Less => (&mut den, -e),
                std::cmp::Ordering::Equal => continue,
            };
            for _ in 0..reps {
                if !side.is_empty() {
                    side.push('\u{b7}');
                }
                side.push_str(BASES[i]);
            }
        }
        match (num.is_empty(), den.is_empty()) {
            (true, true) => write!(f, "1"),
            (false, true) => write!(f, "{num}"),
            (true, false) => write!(f, "1/{den}"),
            (false, false) => write!(f, "{num}/{den}"),
        }
    }
}

/// Maps one unit atom to its base index.
fn base_index(atom: &str) -> Option<usize> {
    match atom {
        "$" | "USD" | "usd" | "dollar" | "dollars" => Some(0),
        "GB" | "gb" => Some(1),
        "month" | "months" | "mo" => Some(2),
        "day" | "days" => Some(3),
        "ops" | "op" | "Ops" | "10kops" => Some(4),
        _ => None,
    }
}

/// Parses a unit expression: `num[/den]`, atoms `·`- (or `*`-) separated,
/// `1` for the trivial side (`1/day`). `None` on any unknown atom.
pub fn parse_unit(text: &str) -> Option<Dim> {
    let text = text.trim();
    let (num, den) = match text.split_once('/') {
        Some((n, d)) => (n, Some(d)),
        None => (text, None),
    };
    let mut exps = [0i16; 5];
    let mut side = |part: &str, sign: i16| -> Option<()> {
        for atom in part.split(['\u{b7}', '*']) {
            let atom = atom.trim();
            if atom.is_empty() || atom == "1" {
                continue;
            }
            exps[base_index(atom)?] += sign;
        }
        Some(())
    };
    side(num, 1)?;
    if let Some(d) = den {
        side(d, -1)?;
    }
    Dim::checked(exps)
}

/// Why a value has the dimension it has: leaf declaration/inference sites,
/// carried along so diagnostics can show a sink→source trace.
type Prov = Vec<String>;

/// The abstract value of one expression.
#[derive(Clone, Debug)]
enum Val {
    /// Nothing known; absorbs through `*`/`/`, passes through `+`.
    Unknown,
    /// A bare numeric literal: adopts the other operand's dimension.
    Literal,
    /// A concretely derived dimension with its provenance.
    Known(Dim, Prov),
}

fn merge_prov(a: &Prov, b: &Prov) -> Prov {
    let mut out = a.clone();
    for s in b {
        if !out.contains(s) {
            out.push(s.clone());
        }
    }
    out.truncate(6);
    out
}

/// Identifier keywords that can sit between a bare `xtask-unit:` comment
/// and the binding identifier it declares.
const DECL_KEYWORDS: &[&str] =
    &["pub", "crate", "in", "const", "static", "let", "mut", "ref", "r#"];

/// The inference seed table: dimensions for well-named identifiers that
/// need no declaration. Deliberately tiny and false-positive-safe.
fn infer(name: &str) -> Option<Dim> {
    if name == "size_gb" || (name.ends_with("_gb") && !name.contains("per")) {
        return Some(Dim { exps: [0, 1, 0, 0, 0] });
    }
    match name {
        "storage_gb_month" => Some(Dim { exps: [1, -1, -1, 0, 0] }),
        "reads" | "writes" | "ops" => Some(Dim { exps: [0, 0, 0, 0, 1] }),
        _ => None,
    }
}

/// All declared dimensions, resolved against the loaded workspace.
#[derive(Default)]
struct DeclTable {
    /// Bare declarations: binding identifier -> (dim, provenance line).
    global: BTreeMap<String, (Dim, String)>,
    /// `xtask-unit(param)` declarations, per function node.
    params: BTreeMap<usize, BTreeMap<String, (Dim, String)>>,
    /// `xtask-unit(return)` declarations, per function node.
    ret_decl: BTreeMap<usize, (Dim, String)>,
}

/// The fixpoint state the evaluator shares across functions.
pub struct Units {
    /// Function node -> derived or declared return dimension.
    pub rets: BTreeMap<usize, (Dim, String)>,
}

/// True when `id` is a Rust keyword the expression grammar handles (or
/// skips) specially rather than treating as a value identifier.
fn is_expr_keyword(id: &str) -> bool {
    matches!(
        id,
        "if" | "else"
            | "match"
            | "for"
            | "while"
            | "loop"
            | "let"
            | "return"
            | "break"
            | "continue"
            | "move"
            | "mut"
            | "ref"
            | "unsafe"
            | "fn"
            | "in"
            | "as"
            | "true"
            | "false"
    )
}

/// Builds the declaration tables from every file's `xtask-unit` comments.
fn build_decls(ws: &Workspace, g: &FnGraph) -> (DeclTable, Vec<String>) {
    let mut decls = DeclTable::default();
    let mut warnings = Vec::new();
    for (file_ix, sf) in ws.files.iter().enumerate() {
        // Function nodes of this file, for named-form attachment.
        let mut fns: Vec<(usize, usize)> = g
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.file_ix == file_ix)
            .map(|(ix, n)| (n.line, ix))
            .collect();
        fns.sort_unstable();
        for decl in &sf.lexed.units {
            let Some(dim) = parse_unit(&decl.text) else {
                warnings.push(format!(
                    "{}:{}: unparseable xtask-unit expression `{}`",
                    sf.file, decl.line, decl.text
                ));
                continue;
            };
            match &decl.target {
                None => match attach_binding(&sf.lexed.toks, decl.line) {
                    Some(name) => {
                        let prov = format!("`{name}`: {dim} (declared {}:{})", sf.file, decl.line);
                        if let Some((prior, at)) = decls.global.get(&name) {
                            if *prior != dim {
                                warnings.push(format!(
                                    "{}:{}: conflicting xtask-unit for `{name}`: {dim} vs {prior} ({at})",
                                    sf.file, decl.line
                                ));
                            }
                        } else {
                            decls.global.insert(name, (dim, prov));
                        }
                    }
                    None => warnings.push(format!(
                        "{}:{}: xtask-unit declaration attaches to no binding",
                        sf.file, decl.line
                    )),
                },
                Some(target) => {
                    // Attach to the next function defined below the comment.
                    let node = fns
                        .iter()
                        .find(|(line, _)| *line > decl.line && *line <= decl.line + 10)
                        .map(|&(_, ix)| ix);
                    let Some(ix) = node else {
                        warnings.push(format!(
                            "{}:{}: xtask-unit({target}) has no function below it",
                            sf.file, decl.line
                        ));
                        continue;
                    };
                    let prov = format!(
                        "`{}` {}: {dim} (declared {}:{})",
                        g.nodes[ix].key,
                        if target == "return" {
                            "returns".to_string()
                        } else {
                            format!("`{target}`")
                        },
                        sf.file,
                        decl.line
                    );
                    if target == "return" {
                        decls.ret_decl.entry(ix).or_insert((dim, prov));
                    } else {
                        decls
                            .params
                            .entry(ix)
                            .or_default()
                            .entry(target.clone())
                            .or_insert((dim, prov));
                    }
                }
            }
        }
    }
    (decls, warnings)
}

/// Finds the binding identifier a bare declaration on `line` attaches to:
/// the first identifier within four lines below that is directly followed
/// by `:` or `=`, skipping declaration keywords.
fn attach_binding(toks: &[Tok], line: usize) -> Option<String> {
    for (i, t) in toks.iter().enumerate() {
        if t.line <= line || t.line > line + 4 {
            continue;
        }
        let Some(id) = t.kind.ident() else { continue };
        if DECL_KEYWORDS.contains(&id) {
            continue;
        }
        let followed =
            toks.get(i + 1).is_some_and(|n| n.kind.is_punct(":") || n.kind.is_punct("="));
        if followed {
            return Some(id.to_string());
        }
        // First non-keyword identifier is not a binding: give up (a field
        // list or expression follows, not the declared binding).
        return None;
    }
    None
}

/// One unit-discipline violation found while evaluating a body.
struct PendingViol {
    line: usize,
    message: String,
    trace: Vec<String>,
}

/// Token-stream abstract evaluator for one function body.
struct Eval<'a> {
    sf: &'a SourceFile,
    toks: &'a [Tok],
    pos: usize,
    end: usize,
    node_ix: usize,
    g: &'a FnGraph,
    decls: &'a DeclTable,
    rets: &'a BTreeMap<usize, (Dim, String)>,
    locals: BTreeMap<String, Val>,
    ret_candidates: Vec<Val>,
    viols: Vec<PendingViol>,
    record: bool,
}

/// Methods whose result keeps the receiver's dimension.
const DIM_PRESERVING: &[&str] = &[
    "min",
    "max",
    "abs",
    "clamp",
    "floor",
    "ceil",
    "round",
    "trunc",
    "iter",
    "into_iter",
    "copied",
    "cloned",
    "clone",
    "to_vec",
    "to_owned",
    "sum",
    "saturating_add",
    "saturating_sub",
    "wrapping_add",
    "wrapping_sub",
    "checked_add",
    "checked_sub",
    "unwrap",
    "expect",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
];

/// Methods whose result is dimensionless regardless of the receiver
/// (log-scaling a count is idiomatic feature encoding, not a unit bug).
const DIMLESS_RESULT: &[&str] =
    &["ln", "ln_1p", "log", "log2", "log10", "exp", "exp2", "exp_m1", "len", "count", "signum"];

impl<'a> Eval<'a> {
    fn at(&self, i: usize) -> Option<&'a Tok> {
        if i < self.end {
            self.toks.get(i)
        } else {
            None
        }
    }

    fn cur(&self) -> Option<&'a Tok> {
        self.at(self.pos)
    }

    fn cur_line(&self) -> usize {
        self.cur().map_or(0, |t| t.line)
    }

    fn is_punct(&self, i: usize, p: &str) -> bool {
        self.at(i).is_some_and(|t| t.kind.is_punct(p))
    }

    fn ident_at(&self, i: usize) -> Option<&'a str> {
        self.at(i).and_then(|t| t.kind.ident())
    }

    /// Index just past the group opened at `open` (`(`/`[`/`{`).
    fn skip_group(&self, open: usize) -> usize {
        let Some(t) = self.at(open) else { return self.end };
        let (o, c) = match &t.kind {
            TokKind::Punct(p) if p == "(" => ("(", ")"),
            TokKind::Punct(p) if p == "[" => ("[", "]"),
            TokKind::Punct(p) if p == "{" => ("{", "}"),
            _ => return open + 1,
        };
        let mut depth = 0usize;
        let mut i = open;
        while i < self.end {
            if self.is_punct(i, o) {
                depth += 1;
            } else if self.is_punct(i, c) {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        self.end
    }

    /// Skips a generic-argument list starting at `<`; tolerates `<<`/`>>`.
    fn skip_angles(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.cur() {
            match &t.kind {
                TokKind::Punct(p) if p == "<" => depth += 1,
                TokKind::Punct(p) if p == "<<" => depth += 2,
                TokKind::Punct(p) if p == ">" => depth -= 1,
                TokKind::Punct(p) if p == ">>" => depth -= 2,
                TokKind::Punct(p) if p == ";" => return,
                _ => {}
            }
            self.pos += 1;
            if depth <= 0 {
                return;
            }
        }
    }

    fn violation(&mut self, line: usize, message: String, trace: Vec<String>) {
        if !self.record {
            return;
        }
        if flow_allowed(&self.sf.lexed, FlowKind::UnitDimensions, line) {
            return;
        }
        self.viols.push(PendingViol { line, message, trace });
    }

    /// Resolves a value identifier: locals, declared params, declared
    /// globals, then the inference table.
    fn resolve(&self, name: &str) -> Val {
        if let Some(v) = self.locals.get(name) {
            return v.clone();
        }
        if let Some(p) = self.decls.params.get(&self.node_ix).and_then(|m| m.get(name)) {
            return Val::Known(p.0, vec![p.1.clone()]);
        }
        if let Some((d, prov)) = self.decls.global.get(name) {
            return Val::Known(*d, vec![prov.clone()]);
        }
        if let Some(d) = infer(name) {
            return Val::Known(d, vec![format!("`{name}`: {d} (inferred from identifier name)")]);
        }
        Val::Unknown
    }

    /// Return dimension of a called function, resolved through this
    /// node's call edges (same-name candidates must agree).
    fn callee_ret(&self, name: &str, qual: Option<&str>) -> Val {
        let mut dims: Vec<&(Dim, String)> = Vec::new();
        for &c in &self.g.nodes[self.node_ix].callees {
            let n = &self.g.nodes[c];
            if n.name != name {
                continue;
            }
            if let Some(q) = qual {
                if n.container.as_deref() != Some(q) {
                    continue;
                }
            }
            if let Some(r) = self.rets.get(&c) {
                dims.push(r);
            } else {
                return Val::Unknown; // a candidate with unknown return
            }
        }
        match dims.split_first() {
            Some((first, rest)) if rest.iter().all(|r| r.0 == first.0) => {
                Val::Known(first.0, vec![first.1.clone()])
            }
            _ => Val::Unknown,
        }
    }

    /// Evaluates statements up to `end` (exclusive); returns the value of
    /// the trailing expression.
    fn eval_block(&mut self, end: usize) -> Val {
        let outer_end = std::mem::replace(&mut self.end, end);
        let mut last = Val::Unknown;
        while self.pos < self.end {
            let Some(t) = self.cur() else { break };
            match &t.kind {
                TokKind::Ident(id) if id == "let" => {
                    self.stmt_let();
                    last = Val::Unknown;
                }
                TokKind::Ident(id) if id == "fn" => {
                    // A nested fn is its own graph node; skip to its body
                    // and over it so it is not evaluated in this scope.
                    while self.pos < self.end
                        && !self.is_punct(self.pos, "{")
                        && !self.is_punct(self.pos, ";")
                    {
                        self.pos += 1;
                    }
                    if self.is_punct(self.pos, "{") {
                        self.pos = self.skip_group(self.pos);
                    } else {
                        self.pos += 1;
                    }
                }
                TokKind::Punct(p) if p == ";" => {
                    self.pos += 1;
                    last = Val::Unknown;
                }
                TokKind::Punct(p) if p == "{" => {
                    let close = self.skip_group(self.pos);
                    self.pos += 1;
                    last = self.eval_block(close - 1);
                    self.pos = close;
                }
                _ => {
                    let before = self.pos;
                    last = self.expr(0);
                    if self.pos == before {
                        self.pos += 1;
                        last = Val::Unknown;
                    }
                }
            }
        }
        self.end = outer_end;
        last
    }

    /// `let [mut] <pattern> [: ty] = <expr>;` — binds simple identifier
    /// patterns to the evaluated right-hand side.
    fn stmt_let(&mut self) {
        self.pos += 1; // let
        if self.ident_at(self.pos) == Some("mut") {
            self.pos += 1;
        }
        let name = match self.ident_at(self.pos) {
            Some(id)
                if self.is_punct(self.pos + 1, ":")
                    || self.is_punct(self.pos + 1, "=")
                    || self.is_punct(self.pos + 1, ";") =>
            {
                Some(id.to_string())
            }
            _ => None,
        };
        // Skip pattern and type annotation to `=` or `;` at group depth 0.
        let mut depth = 0usize;
        while let Some(t) = self.cur() {
            match &t.kind {
                TokKind::Punct(p) if p == "(" || p == "[" || p == "{" => depth += 1,
                TokKind::Punct(p) if p == ")" || p == "]" || p == "}" => {
                    depth = depth.saturating_sub(1);
                }
                TokKind::Punct(p) if depth == 0 && (p == "=" || p == ";") => break,
                _ => {}
            }
            self.pos += 1;
        }
        if self.is_punct(self.pos, "=") {
            self.pos += 1;
            let v = self.expr(0);
            if let Some(n) = name {
                self.locals.insert(n, v);
            }
        }
        if self.is_punct(self.pos, ";") {
            self.pos += 1;
        }
    }

    /// Binding power of the binary operator at `pos`, if any.
    fn binop(&self) -> Option<(&'a str, u8)> {
        let t = self.cur()?;
        let TokKind::Punct(p) = &t.kind else { return None };
        let bp = match p.as_str() {
            "*" | "/" | "%" => 50,
            "+" | "-" => 40,
            "<" | ">" | "<=" | ">=" | "==" | "!=" => 30,
            "&&" | "||" | "&" | "|" | "^" | "<<" | ">>" => 20,
            ".." | "..=" => 10,
            _ => return None,
        };
        Some((p.as_str(), bp))
    }

    fn expr(&mut self, min_bp: u8) -> Val {
        let mut lhs = self.primary();
        while let Some((op, bp)) = self.binop() {
            if bp < min_bp {
                break;
            }
            let line = self.cur_line();
            self.pos += 1;
            // Range tails may be empty (`[..day]`, `0..`).
            let rhs = if matches!(op, ".." | "..=")
                && (self.cur().is_none()
                    || self.cur().is_some_and(
                        |t| matches!(&t.kind, TokKind::Punct(p) if p != "(" && p != "-"),
                    )) {
                Val::Unknown
            } else {
                self.expr(bp + 1)
            };
            lhs = match op {
                "*" => self.combine_mul(lhs, rhs, line, false),
                "/" => self.combine_mul(lhs, rhs, line, true),
                "%" => lhs,
                "+" | "-" => self.combine_add(lhs, rhs, line, op),
                "<" | ">" | "<=" | ">=" | "==" | "!=" => {
                    self.check_cmp(&lhs, &rhs, line, op);
                    Val::Unknown
                }
                _ => Val::Unknown,
            };
        }
        lhs
    }

    fn combine_mul(&mut self, lhs: Val, rhs: Val, _line: usize, is_div: bool) -> Val {
        match (lhs, rhs) {
            (Val::Known(a, pa), Val::Known(b, pb)) => {
                let d = if is_div { a.div(b) } else { a.mul(b) };
                d.map_or(Val::Unknown, |d| Val::Known(d, merge_prov(&pa, &pb)))
            }
            (Val::Known(a, pa), Val::Literal) => Val::Known(a, pa),
            (Val::Literal, Val::Known(b, pb)) => {
                if is_div {
                    // literal / dim inverts the dimension.
                    Dim::DIMENSIONLESS.div(b).map_or(Val::Unknown, |d| Val::Known(d, pb))
                } else {
                    Val::Known(b, pb)
                }
            }
            (Val::Literal, Val::Literal) => Val::Literal,
            _ => Val::Unknown,
        }
    }

    fn combine_add(&mut self, lhs: Val, rhs: Val, line: usize, op: &str) -> Val {
        match (lhs, rhs) {
            (Val::Known(a, pa), Val::Known(b, pb)) => {
                if a != b {
                    let mut trace = vec![format!("left operand has dimension {a}")];
                    trace.extend(pa.iter().cloned());
                    trace.push(format!("right operand has dimension {b}"));
                    trace.extend(pb.iter().cloned());
                    self.violation(
                        line,
                        format!("`{op}` combines {a} with {b}; addition requires equal dimensions"),
                        trace,
                    );
                    Val::Unknown
                } else {
                    Val::Known(a, merge_prov(&pa, &pb))
                }
            }
            (Val::Known(a, p), Val::Literal) | (Val::Literal, Val::Known(a, p)) => Val::Known(a, p),
            (Val::Known(a, p), Val::Unknown) | (Val::Unknown, Val::Known(a, p)) => Val::Known(a, p),
            (Val::Literal, Val::Literal) => Val::Literal,
            _ => Val::Unknown,
        }
    }

    fn check_cmp(&mut self, lhs: &Val, rhs: &Val, line: usize, op: &str) {
        if let (Val::Known(a, pa), Val::Known(b, pb)) = (lhs, rhs) {
            if a != b {
                let mut trace = vec![format!("left operand has dimension {a}")];
                trace.extend(pa.iter().cloned());
                trace.push(format!("right operand has dimension {b}"));
                trace.extend(pb.iter().cloned());
                self.violation(
                    line,
                    format!(
                        "`{op}` compares {a} against {b}; comparisons require equal dimensions"
                    ),
                    trace,
                );
            }
        }
    }

    /// Evaluates comma-separated call/index arguments inside a group whose
    /// closing delimiter sits at `close - 1`; returns the first argument's
    /// value (the one `Money` constructors take).
    fn eval_args(&mut self, close: usize) -> Val {
        let mut first = None;
        while self.pos < close.saturating_sub(1) {
            let before = self.pos;
            let saved_end = std::mem::replace(&mut self.end, close - 1);
            let v = self.expr(0);
            self.end = saved_end;
            if first.is_none() && self.pos > before {
                first = Some(v);
            }
            if self.pos == before {
                self.pos += 1;
            }
            if self.is_punct(self.pos, ",") {
                self.pos += 1;
            }
        }
        self.pos = close;
        first.unwrap_or(Val::Unknown)
    }

    fn primary(&mut self) -> Val {
        let Some(t) = self.cur() else { return Val::Unknown };
        match &t.kind {
            TokKind::Num => {
                self.pos += 1;
                self.postfix(Val::Literal)
            }
            TokKind::Lit => {
                self.pos += 1;
                self.postfix(Val::Unknown)
            }
            TokKind::Punct(p) if p == "-" || p == "!" || p == "*" || p == "&" || p == "&&" => {
                self.pos += 1;
                self.primary()
            }
            TokKind::Punct(p) if p == ".." || p == "..=" => {
                self.pos += 1;
                // RangeTo: evaluate the bound, range itself is unknown.
                if self.cur().is_some_and(|t| !matches!(&t.kind, TokKind::Punct(q) if q == "]" || q == ")" || q == "}" || q == ";" || q == ",")) {
                    self.expr(11);
                }
                Val::Unknown
            }
            TokKind::Punct(p) if p == "(" => {
                let close = self.skip_group(self.pos);
                self.pos += 1;
                let saved_end = std::mem::replace(&mut self.end, close - 1);
                let v = self.expr(0);
                let tuple = self.is_punct(self.pos, ",");
                if tuple {
                    // Evaluate the remaining tuple elements for sinks.
                    self.eval_args(close);
                }
                self.end = saved_end;
                self.pos = close;
                self.postfix(if tuple { Val::Unknown } else { v })
            }
            TokKind::Punct(p) if p == "[" => {
                let close = self.skip_group(self.pos);
                self.pos += 1;
                self.eval_args(close);
                self.postfix(Val::Unknown)
            }
            TokKind::Punct(p) if p == "{" => {
                let close = self.skip_group(self.pos);
                self.pos += 1;
                let v = self.eval_block(close - 1);
                self.pos = close;
                v
            }
            TokKind::Punct(p) if p == "||" => {
                self.pos += 1;
                self.expr(0);
                Val::Unknown
            }
            TokKind::Punct(p) if p == "|" => {
                // Closure parameters: skip to the closing `|`.
                self.pos += 1;
                while let Some(t) = self.cur() {
                    let done = t.kind.is_punct("|");
                    self.pos += 1;
                    if done {
                        break;
                    }
                }
                self.expr(0);
                Val::Unknown
            }
            TokKind::Ident(id) => self.primary_ident(id),
            _ => Val::Unknown,
        }
    }

    #[allow(clippy::too_many_lines)]
    fn primary_ident(&mut self, id: &str) -> Val {
        match id {
            "if" | "while" => {
                self.pos += 1;
                if self.ident_at(self.pos) == Some("let") {
                    // if-let / while-let: skip the pattern to `=`.
                    self.pos += 1;
                    let mut depth = 0usize;
                    while let Some(t) = self.cur() {
                        match &t.kind {
                            TokKind::Punct(p) if p == "(" || p == "[" => depth += 1,
                            TokKind::Punct(p) if p == ")" || p == "]" => {
                                depth = depth.saturating_sub(1);
                            }
                            TokKind::Punct(p) if depth == 0 && p == "=" => break,
                            TokKind::Punct(p) if depth == 0 && p == "{" => break,
                            _ => {}
                        }
                        self.pos += 1;
                    }
                    if self.is_punct(self.pos, "=") {
                        self.pos += 1;
                    }
                }
                self.expr(0); // condition / scrutinee
                let v1 = if self.is_punct(self.pos, "{") { self.primary() } else { Val::Unknown };
                if self.ident_at(self.pos) == Some("else") {
                    self.pos += 1;
                    let v2 = self.primary(); // block or chained if
                    return match (v1, v2) {
                        (Val::Known(a, pa), Val::Known(b, pb)) if a == b => {
                            Val::Known(a, merge_prov(&pa, &pb))
                        }
                        (Val::Known(a, p), Val::Literal) | (Val::Literal, Val::Known(a, p)) => {
                            Val::Known(a, p)
                        }
                        (Val::Literal, Val::Literal) => Val::Literal,
                        _ => Val::Unknown,
                    };
                }
                Val::Unknown
            }
            "match" => {
                self.pos += 1;
                self.expr(0); // scrutinee
                if self.is_punct(self.pos, "{") {
                    let close = self.skip_group(self.pos);
                    self.pos += 1;
                    self.eval_block(close - 1);
                    self.pos = close;
                }
                Val::Unknown
            }
            "for" => {
                self.pos += 1;
                while self.cur().is_some() && self.ident_at(self.pos) != Some("in") {
                    self.pos += 1;
                }
                self.pos += 1; // in
                self.expr(0);
                if self.is_punct(self.pos, "{") {
                    self.primary();
                }
                Val::Unknown
            }
            "loop" | "unsafe" | "else" | "move" | "mut" | "ref" => {
                self.pos += 1;
                self.primary()
            }
            "return" => {
                self.pos += 1;
                if self.cur().is_some_and(|t| !t.kind.is_punct(";")) {
                    let v = self.expr(0);
                    self.ret_candidates.push(v);
                }
                Val::Unknown
            }
            "break" | "continue" => {
                self.pos += 1;
                Val::Unknown
            }
            "true" | "false" => {
                self.pos += 1;
                self.postfix(Val::Unknown)
            }
            _ => {
                // Macro invocation: skip the whole argument group.
                if self.is_punct(self.pos + 1, "!") {
                    self.pos += 2;
                    self.pos = self.skip_group(self.pos);
                    return Val::Unknown;
                }
                // Path: `a::b::c` with optional turbofish segments.
                let mut segs: Vec<String> = vec![id.to_string()];
                self.pos += 1;
                while self.is_punct(self.pos, "::") {
                    self.pos += 1;
                    if self.is_punct(self.pos, "<") {
                        self.skip_angles();
                        continue;
                    }
                    match self.ident_at(self.pos) {
                        Some(seg) => {
                            segs.push(seg.to_string());
                            self.pos += 1;
                        }
                        None => break,
                    }
                }
                let name = segs.last().cloned().unwrap_or_default();
                let qual = if segs.len() >= 2 {
                    let q = &segs[segs.len() - 2];
                    if matches!(q.as_str(), "crate" | "super" | "self") {
                        None
                    } else {
                        Some(segs[segs.len() - 2].clone())
                    }
                } else {
                    None
                };
                if self.is_punct(self.pos, "(") {
                    let line = self.cur_line();
                    let close = self.skip_group(self.pos);
                    self.pos += 1;
                    let arg = self.eval_args(close);
                    let v = self.call_result(&name, qual.as_deref(), &arg, line);
                    return self.postfix(v);
                }
                // Value path: resolve the final segment.
                let v = if segs.len() == 1 && segs[0] == "self" {
                    Val::Unknown
                } else {
                    self.resolve(&name)
                };
                self.postfix(v)
            }
        }
    }

    /// Result of a free/path call, including the `Money` sink check.
    fn call_result(&mut self, name: &str, qual: Option<&str>, arg: &Val, line: usize) -> Val {
        if qual == Some("Money") && matches!(name, "from_dollars" | "from_micros") {
            if let Val::Known(d, prov) = arg {
                if *d != Dim::DOLLAR && *d != Dim::DOLLAR_PER_DAY {
                    let mut trace = vec![format!("sink Money::{name} at {}:{line}", self.sf.file)];
                    trace.push(format!("argument has derived dimension {d}"));
                    trace.extend(prov.iter().cloned());
                    self.violation(
                        line,
                        format!(
                            "value of dimension {d} flows into Money::{name} \
                             (expected $ or $/day)"
                        ),
                        trace,
                    );
                }
            }
            return Val::Known(
                Dim::DOLLAR,
                vec![format!("Money::{name} yields $ ({}:{line})", self.sf.file)],
            );
        }
        self.callee_ret(name, qual)
    }

    /// Postfix chain: field access, method calls, indexing, `as` casts,
    /// `?`, and direct calls on the evaluated expression.
    fn postfix(&mut self, mut v: Val) -> Val {
        loop {
            if self.is_punct(self.pos, ".") {
                if self.at(self.pos + 1).is_some_and(|t| t.kind == TokKind::Num) {
                    self.pos += 2; // tuple index
                    v = Val::Unknown;
                    continue;
                }
                let Some(m) = self.ident_at(self.pos + 1) else {
                    self.pos += 1;
                    continue;
                };
                self.pos += 2;
                if self.is_punct(self.pos, "::") {
                    self.pos += 1;
                    if self.is_punct(self.pos, "<") {
                        self.skip_angles();
                    }
                }
                if self.is_punct(self.pos, "(") {
                    let close = self.skip_group(self.pos);
                    self.pos += 1;
                    self.eval_args(close);
                    v = if DIM_PRESERVING.contains(&m) {
                        v
                    } else if DIMLESS_RESULT.contains(&m) {
                        Val::Known(Dim::DIMENSIONLESS, vec![format!("`.{m}()` is dimensionless")])
                    } else {
                        self.callee_ret(m, None)
                    };
                } else {
                    // Field access.
                    v = self.resolve_field(m);
                }
            } else if self.is_punct(self.pos, "[") {
                let close = self.skip_group(self.pos);
                self.pos += 1;
                self.eval_args(close);
                // Indexing and slicing keep the element dimension.
            } else if self.is_punct(self.pos, "(") {
                let close = self.skip_group(self.pos);
                self.pos += 1;
                self.eval_args(close);
                v = Val::Unknown;
            } else if self.is_punct(self.pos, "?") {
                self.pos += 1;
            } else if self.ident_at(self.pos) == Some("as") {
                // `expr as T` keeps the dimension; skip the type path.
                self.pos += 1;
                while self.ident_at(self.pos).is_some_and(|i| !is_expr_keyword(i)) {
                    self.pos += 1;
                    if self.is_punct(self.pos, "::") {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
            } else {
                break;
            }
        }
        v
    }

    /// A field read: declared globals, then the inference table (never
    /// locals — a local cannot shadow another struct's field).
    fn resolve_field(&self, name: &str) -> Val {
        if let Some((d, prov)) = self.decls.global.get(name) {
            return Val::Known(*d, vec![prov.clone()]);
        }
        if let Some(d) = infer(name) {
            return Val::Known(d, vec![format!("`{name}`: {d} (inferred from identifier name)")]);
        }
        Val::Unknown
    }
}

/// Evaluates one function body; returns its violations and the derived
/// return value.
fn eval_node(
    ws: &Workspace,
    g: &FnGraph,
    decls: &DeclTable,
    rets: &BTreeMap<usize, (Dim, String)>,
    ix: usize,
    record: bool,
) -> (Vec<PendingViol>, Option<Dim>) {
    let node = &g.nodes[ix];
    let Some((start, end)) = node.body else { return (Vec::new(), None) };
    let sf = &ws.files[node.file_ix];
    let end = end.min(sf.lexed.toks.len());
    let mut ev = Eval {
        sf,
        toks: &sf.lexed.toks,
        pos: start + 1, // skip the opening `{` of the body
        end,
        node_ix: ix,
        g,
        decls,
        rets,
        locals: BTreeMap::new(),
        ret_candidates: Vec::new(),
        viols: Vec::new(),
        record,
    };
    // Body ranges include the braces; evaluate the interior.
    let last = ev.eval_block(end.saturating_sub(1));
    let mut candidates: Vec<Dim> = Vec::new();
    for v in ev.ret_candidates.iter().chain(std::iter::once(&last)) {
        if let Val::Known(d, _) = v {
            candidates.push(*d);
        }
    }
    let ret = match candidates.split_first() {
        Some((first, rest)) if rest.iter().all(|d| d == first) => Some(*first),
        _ => None,
    };
    (ev.viols, ret)
}

/// Seeds return dimensions from `-> Money` signatures: any workspace
/// function returning `Money` yields `$` by construction.
fn money_signature_rets(ws: &Workspace, g: &FnGraph, rets: &mut BTreeMap<usize, (Dim, String)>) {
    for (file_ix, sf) in ws.files.iter().enumerate() {
        walk_items(&sf.items, &mut |item, _stack| {
            if item.kind != ItemKind::Fn || item.in_test {
                return;
            }
            let Some((bstart, _)) = item.body else { return };
            // Match the item back to its graph node by file and line.
            let Some(ix) = g
                .nodes
                .iter()
                .position(|n| n.file_ix == file_ix && n.line == item.line && n.name == item.name)
            else {
                return;
            };
            if rets.contains_key(&ix) {
                return;
            }
            let sig = &sf.lexed.toks[item.start_tok..bstart.min(sf.lexed.toks.len())];
            let arrow = sig.iter().position(|t| t.kind.is_punct("->"));
            let returns_money =
                arrow.is_some_and(|a| sig[a..].iter().any(|t| t.kind.ident() == Some("Money")));
            if returns_money {
                rets.insert(ix, (Dim::DOLLAR, format!("`{}` returns Money ($)", g.nodes[ix].key)));
            }
        });
    }
}

/// Runs the full analysis: declaration tables, the interprocedural return
/// fixpoint, then a recording pass that collects violations.
pub fn compute(ws: &Workspace, g: &FnGraph) -> (Units, Vec<FlowDiag>, Vec<String>) {
    let (decls, mut warnings) = build_decls(ws, g);
    let mut rets: BTreeMap<usize, (Dim, String)> = decls.ret_decl.clone();
    money_signature_rets(ws, g, &mut rets);
    // Fixpoint: derive return dimensions from body tails, callee→caller.
    // Dimensions only move Unknown→Known (declared seeds are never
    // overwritten), so this terminates in at most `nodes` rounds.
    loop {
        let mut changed = false;
        for ix in 0..g.nodes.len() {
            if rets.contains_key(&ix) {
                continue;
            }
            let (_, ret) = eval_node(ws, g, &decls, &rets, ix, false);
            if let Some(d) = ret {
                let prov = format!(
                    "`{}` derives {d} ({}:{})",
                    g.nodes[ix].key, ws.files[g.nodes[ix].file_ix].file, g.nodes[ix].line
                );
                rets.insert(ix, (d, prov));
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Recording pass: one evaluation per body with the final tables.
    let mut diags = Vec::new();
    for ix in 0..g.nodes.len() {
        let (viols, _) = eval_node(ws, g, &decls, &rets, ix, true);
        let node = &g.nodes[ix];
        let sf = &ws.files[node.file_ix];
        for v in viols {
            diags.push(FlowDiag {
                kind: FlowKind::UnitDimensions,
                file: sf.file.clone(),
                line: v.line,
                symbol: node.key.clone(),
                message: v.message,
                trace: v.trace,
            });
        }
    }
    diags.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
    diags.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    warnings.sort();
    (Units { rets }, diags, warnings)
}

/// Diagnostics-only entry point for `cargo xtask check` / `units`.
pub fn analyze(ws: &Workspace, g: &FnGraph) -> (Vec<FlowDiag>, Vec<String>) {
    let (_, diags, warnings) = compute(ws, g);
    (diags, warnings)
}

/// Graphviz DOT export: every function with a known return dimension,
/// labeled with that dimension; edges follow calls between them.
pub fn dot(ws: &Workspace, g: &FnGraph, units: &Units) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("digraph unit_dimensions {\n    rankdir=LR;\n");
    for (&ix, (dim, _)) in &units.rets {
        let n = &g.nodes[ix];
        let shape = if *dim == Dim::DOLLAR || *dim == Dim::DOLLAR_PER_DAY {
            "doubleoctagon"
        } else {
            "box"
        };
        let _ = writeln!(
            out,
            "    \"{}\" [shape={shape}, label=\"{}\\n{}\\n{}:{}\"];",
            n.key, n.key, dim, ws.files[n.file_ix].file, n.line
        );
    }
    for &ix in units.rets.keys() {
        for &c in &g.nodes[ix].callees {
            if units.rets.contains_key(&c) {
                let _ = writeln!(out, "    \"{}\" -> \"{}\";", g.nodes[ix].key, g.nodes[c].key);
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_expressions_parse_and_render() {
        let cases = [
            ("$", "$"),
            ("GB", "GB"),
            ("$/GB\u{b7}month", "$/GB\u{b7}month"),
            ("$/day", "$/day"),
            ("day/month", "day/month"),
            ("$/GB*ops", "$/GB\u{b7}ops"),
            ("1", "1"),
            ("1/day", "1/day"),
            ("USD/ops", "$/ops"),
        ];
        for (text, want) in cases {
            let dim = parse_unit(text).unwrap_or_else(|| panic!("parse {text}"));
            assert_eq!(dim.to_string(), want, "render of {text}");
        }
        assert!(parse_unit("furlongs").is_none());
        assert!(parse_unit("$/fortnight").is_none());
    }

    #[test]
    fn dimension_arithmetic_composes() {
        let rate = parse_unit("$/GB\u{b7}month").unwrap();
        let days_per_month = parse_unit("day/month").unwrap();
        let gb = parse_unit("GB").unwrap();
        let per_day = rate.div(days_per_month).unwrap().mul(gb).unwrap();
        assert_eq!(per_day, Dim::DOLLAR_PER_DAY);
        // Forgetting the proration leaves $/month — not sink-legal.
        let slipped = rate.mul(gb).unwrap();
        assert_eq!(slipped.to_string(), "$/month");
        assert_ne!(slipped, Dim::DOLLAR);
        assert_ne!(slipped, Dim::DOLLAR_PER_DAY);
    }

    #[test]
    fn inference_table_is_narrow() {
        assert_eq!(infer("size_gb"), Some(parse_unit("GB").unwrap()));
        assert_eq!(infer("payload_gb"), Some(parse_unit("GB").unwrap()));
        assert_eq!(infer("reads"), Some(parse_unit("ops").unwrap()));
        assert_eq!(infer("storage_gb_month"), Some(parse_unit("$/GB\u{b7}month").unwrap()));
        // `*_per_gb` rates must NOT infer as GB.
        assert_eq!(infer("retrieval_per_gb"), None);
        assert_eq!(infer("change_per_gb"), None);
        assert_eq!(infer("days"), None);
    }
}
