//! Self-tests for the F4 `unit-dimensions` analysis: the committed
//! `f4_units.rs` fixture must trip every rejection rule with the
//! documented precision, the real workspace must be clean modulo the
//! baseline, and a seeded property test round-trips every `PricingPolicy`
//! preset shape through the dimension table.

use crate::flow::{FlowDiag, FlowKind, FnGraph, Workspace};
use crate::flow_tests::fixture_ws;
use crate::units;

fn symbols(diags: &[FlowDiag]) -> Vec<&str> {
    diags.iter().map(|d| d.symbol.as_str()).collect()
}

#[test]
fn f4_fixture_trips_every_rejection_rule() {
    let (ws, g) = fixture_ws("f4_units.rs");
    let (diags, warnings) = units::analyze(&ws, &g);
    assert!(warnings.is_empty(), "{warnings:?}");
    let syms = symbols(&diags);
    // Mixed addition, cross-dimension comparison, and the three Money
    // sink violations (direct slip, declared return, derived return).
    for sym in [
        "core::mixed_add",
        "core::mixed_compare",
        "core::month_day_slip",
        "core::bill_via_declared",
        "core::bill_via_derived",
    ] {
        assert!(syms.contains(&sym), "missing {sym}: {diags:?}");
    }
    // The correct proration, polymorphic smoothing, and the waived site
    // stay silent.
    for sym in ["core::storage_day", "core::smoothed", "core::waived"] {
        assert!(!syms.contains(&sym), "false positive on {sym}: {diags:?}");
    }
    assert!(diags.iter().all(|d| d.kind == FlowKind::UnitDimensions));
    assert_eq!(diags.len(), 5, "{diags:?}");
}

#[test]
fn f4_sink_diagnostics_carry_source_traces() {
    let (ws, g) = fixture_ws("f4_units.rs");
    let (diags, _) = units::analyze(&ws, &g);
    let slip = diags
        .iter()
        .find(|d| d.symbol == "core::month_day_slip")
        .expect("month/day slip diagnostic");
    assert!(slip.message.contains("$/month"), "{slip:?}");
    assert!(slip.message.contains("Money::from_dollars"), "{slip:?}");
    let trace = slip.trace.join("\n");
    assert!(trace.contains("sink Money::from_dollars"), "{trace}");
    assert!(trace.contains("RATE_GB_MONTH"), "{trace}");
    // The interprocedural diagnostic names the helper's provenance.
    let derived = diags
        .iter()
        .find(|d| d.symbol == "core::bill_via_derived")
        .expect("derived-return diagnostic");
    assert!(derived.trace.join("\n").contains("derived_rate"), "{derived:?}");
}

#[test]
fn f4_dot_export_labels_dimensions() {
    let (ws, g) = fixture_ws("f4_units.rs");
    let (u, _, _) = units::compute(&ws, &g);
    let dot = units::dot(&ws, &g, &u);
    assert!(dot.starts_with("digraph unit_dimensions"), "{dot}");
    // The declared $/month helper appears with its dimension.
    assert!(dot.contains("core::monthly_rate"), "{dot}");
    assert!(dot.contains("$/month"), "{dot}");
    // Money-returning functions render as sink-shaped nodes.
    assert!(dot.contains("doubleoctagon"), "{dot}");
}

#[test]
fn units_tree_is_clean_modulo_baseline() {
    // The gate `cargo xtask check` step 3 enforces: every F4 diagnostic in
    // the real workspace is fixed, waived in place, or baselined.
    let root = crate::walk::repo_root();
    let ws = Workspace::load_flow(&root).expect("workspace loads");
    let g = FnGraph::build(&ws);
    let (diags, warnings) = units::analyze(&ws, &g);
    assert!(
        warnings.is_empty(),
        "workspace has unit-declaration warnings:\n{}",
        warnings.join("\n")
    );
    let base = crate::baseline::Baseline::load(&root).expect("baseline parses");
    let items: Vec<(String, String)> =
        diags.iter().map(|d| (d.kind.name().to_string(), d.file.clone())).collect();
    let applied = base.apply_named(&items, &crate::baseline::today_utc());
    let fresh: Vec<String> = diags
        .iter()
        .zip(&applied.matched)
        .filter(|(_, m)| m.is_none())
        .map(|(d, _)| d.to_string())
        .collect();
    assert!(
        fresh.is_empty(),
        "workspace has non-baselined unit-dimension diagnostics:\n{}",
        fresh.join("\n")
    );
}

/// splitmix64: a tiny seeded generator so the property test needs no
/// dependencies and stays reproducible.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A price-like decimal in (0, ~65): four fractional digits, nonzero.
    fn price(&mut self) -> String {
        let cents = self.next() % 650_000 + 1;
        format!("{}.{:04}", cents / 10_000, cents % 10_000)
    }
}

/// Renders a synthetic annotated pricing module mirroring the real
/// `TierPrices` arithmetic, with randomized preset prices. When `prorate`
/// is false the DAYS_PER_MONTH division is dropped — the month/day slip
/// the analysis exists to catch.
fn pricing_source(rng: &mut SplitMix64, prorate: bool) -> String {
    let proration = if prorate { " / DAYS_PER_MONTH" } else { "" };
    format!(
        r"//! Synthetic preset.

/// Ops per priced unit.
/// xtask-unit: 1
pub const OPS_PER_PRICE_UNIT: f64 = 10_000.0;

/// Billing-month length.
/// xtask-unit: day/month
pub const DAYS_PER_MONTH: f64 = 30.0;

/// Monthly storage rate.
/// xtask-unit: $/GB·month
pub const STORAGE_GB_MONTH: f64 = {p0};

/// Read request rate.
/// xtask-unit: $/ops
pub const READ_PER_10K: f64 = {p1};

/// Retrieval data rate.
/// xtask-unit: $/GB·ops
pub const RETRIEVAL_PER_GB: f64 = {p2};

/// Daily storage charge for one file.
pub fn storage_day(size_gb: f64) -> Money {{
    Money::from_dollars(STORAGE_GB_MONTH{proration} * size_gb)
}}

/// Read charge: per-request plus retrieval, scaled by op count.
pub fn read_cost(ops: f64, size_gb: f64) -> Money {{
    let per_op = READ_PER_10K / OPS_PER_PRICE_UNIT
        + RETRIEVAL_PER_GB / OPS_PER_PRICE_UNIT * size_gb;
    Money::from_dollars(ops * per_op)
}}

/// Write charge reuses the read shape.
pub fn write_cost(ops: f64, size_gb: f64) -> Money {{
    read_cost(ops, size_gb)
}}
",
        p0 = rng.price(),
        p1 = rng.price(),
        p2 = rng.price(),
    )
}

#[test]
fn preset_arithmetic_round_trips_the_dimension_table() {
    // Property (seeded): for any preset prices, the real cost-model shape
    // (storage_day / read_cost / write_cost) derives clean dimensions —
    // and the same shape minus the month→day proration always trips F4.
    let mut rng = SplitMix64(0x5eed_cafe);
    for round in 0..32 {
        let good = pricing_source(&mut rng, true);
        let ws = Workspace::from_sources(&[("pricing", "crates/pricing/src/synth.rs", &good)]);
        let g = FnGraph::build(&ws);
        let (diags, warnings) = units::analyze(&ws, &g);
        assert!(diags.is_empty(), "round {round}: clean preset flagged:\n{diags:?}");
        assert!(warnings.is_empty(), "round {round}: {warnings:?}");

        let slipped = pricing_source(&mut rng, false);
        let ws = Workspace::from_sources(&[("pricing", "crates/pricing/src/synth.rs", &slipped)]);
        let g = FnGraph::build(&ws);
        let (diags, _) = units::analyze(&ws, &g);
        let slip = diags
            .iter()
            .find(|d| d.symbol == "pricing::storage_day")
            .unwrap_or_else(|| panic!("round {round}: month/day slip not caught: {diags:?}"));
        assert!(slip.message.contains("$/month"), "{slip:?}");
        assert!(slip.trace.iter().any(|s| s.contains("STORAGE_GB_MONTH")), "{slip:?}");
    }
}
