//! Workspace file discovery for the lint pass.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Recursively collects `.rs` files under `root`, sorted for stable output.
pub fn rust_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    collect(root, &mut out)?;
    out.sort();
    Ok(out)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if dir.is_file() {
        if dir.extension().is_some_and(|e| e == "rs") {
            out.push(dir.to_path_buf());
        }
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The source files the workspace lint pass covers: every `crates/*/src`
/// tree except `xtask` itself (its fixtures are violations on purpose).
///
/// `tests/`, `benches/`, and `examples/` trees are excluded: all four lints
/// exempt test and bench code, and example binaries are demo code.
pub fn workspace_lint_files(repo_root: &Path) -> io::Result<Vec<PathBuf>> {
    let crates_dir = repo_root.join("crates");
    let mut out = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let path = entry?.path();
        if !path.is_dir() || path.file_name().is_some_and(|n| n == "xtask") {
            continue;
        }
        let src = path.join("src");
        if src.is_dir() {
            out.extend(rust_files(&src)?);
        }
    }
    out.sort();
    Ok(out)
}

/// The repository root, resolved from this crate's manifest directory.
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repo_root_contains_workspace_manifest() {
        assert!(repo_root().join("Cargo.toml").is_file());
    }

    #[test]
    fn lint_files_exclude_xtask_and_tests_dirs() {
        let files = workspace_lint_files(&repo_root()).expect("walk");
        assert!(!files.is_empty());
        for f in &files {
            let s = f.display().to_string();
            assert!(!s.contains("xtask"), "{s}");
            assert!(!s.contains("/tests/"), "{s}");
        }
    }
}
