//! Multi-CSP comparison: the same workload priced under two providers'
//! tier policies (§4.2.1: "Γ can be easily adjusted for multiple CSPs").
//!
//! Shows that the tier-assignment plan is provider-specific — the optimal
//! plan under Azure pricing is not optimal under S3-like pricing — and
//! quantifies the cost of deploying the wrong plan.
//!
//! ```text
//! cargo run --release --example multi_csp
//! ```

use minicost::policy::DecisionContext;
use minicost::prelude::*;

/// Replays a fixed per-day tier schedule captured from another run.
struct ReplayPolicy {
    schedule: Vec<Vec<Tier>>,
}

impl Policy for ReplayPolicy {
    fn name(&self) -> &'static str {
        "replay"
    }

    // The schedule is indexed by global file index, so replay stays correct
    // (and deterministic) under sharded simulation too.
    fn decide_one(&mut self, ctx: &DecisionContext<'_>, slot: usize) -> Tier {
        self.schedule[ctx.day][ctx.global(slot)]
    }

    fn fork(&self) -> Box<dyn Policy> {
        Box::new(ReplayPolicy { schedule: self.schedule.clone() })
    }
}

/// Runs Optimal under `model` and records the day-by-day schedule.
fn optimal_schedule(trace: &Trace, model: &CostModel, cfg: &SimConfig) -> Vec<Vec<Tier>> {
    let mut opt = OptimalPolicy::plan(trace, model, cfg.initial_tier);
    (0..trace.days)
        .map(|day| {
            let current = vec![cfg.initial_tier; trace.len()];
            opt.decide_fleet(day, trace, model, &current)
        })
        .collect()
}

fn main() {
    let trace = Trace::generate(&TraceConfig {
        files: 1_000,
        days: 21,
        seed: 314,
        ..TraceConfig::default()
    });
    let sim_cfg = SimConfig::default();

    let azure = CostModel::new(PricingPolicy::azure_blob_2020());
    let aws = CostModel::new(PricingPolicy::aws_s3_like());

    println!("{:<28} {:>14} {:>14}", "plan \\ billed under", "azure", "s3-like");
    for (plan_name, schedule_model) in [("azure-optimal plan", &azure), ("s3-optimal plan", &aws)] {
        let schedule = optimal_schedule(&trace, schedule_model, &sim_cfg);
        let under_azure =
            simulate(&trace, &azure, &mut ReplayPolicy { schedule: schedule.clone() }, &sim_cfg)
                .total_cost();
        let under_aws =
            simulate(&trace, &aws, &mut ReplayPolicy { schedule }, &sim_cfg).total_cost();
        println!("{plan_name:<28} {under_azure:>14} {under_aws:>14}");
    }

    // Reference rows: the static baselines under each provider.
    for (name, policy) in [("always hot", 0usize), ("always cold", 1)] {
        let mk = |tier| SingleTierPolicy::new(tier);
        let tier = if policy == 0 { Tier::Hot } else { Tier::Cool };
        let a = simulate(&trace, &azure, &mut mk(tier), &sim_cfg).total_cost();
        let s = simulate(&trace, &aws, &mut mk(tier), &sim_cfg).total_cost();
        println!("{name:<28} {a:>14} {s:>14}");
    }

    println!(
        "\nReading the table: each provider's own optimal plan is cheapest in \
         its column; replaying the other provider's plan leaves money on the \
         table, which is why MiniCost retrains per pricing policy."
    );

    // Joint placement: let the optimizer choose (datacenter, tier) per file
    // per day, with cross-provider migration priced at $0.05/GB egress.
    let multi = MultiCspModel::new(vec![azure.clone(), aws.clone()], 0.05);
    let home = Location { dc: 0, tier: Tier::Hot };
    let mut joint_total = Money::ZERO;
    let mut migrated_files = 0usize;
    for file in &trace.files {
        let (plan, cost) = optimal_location_plan(file, &multi, home);
        joint_total += cost;
        if plan.iter().any(|l| l.dc != 0) {
            migrated_files += 1;
        }
    }
    let azure_only = simulate(
        &trace,
        &azure,
        &mut OptimalPolicy::plan(&trace, &azure, sim_cfg.initial_tier),
        &sim_cfg,
    )
    .total_cost();
    println!(
        "\njoint (dc x tier) placement: {joint_total} vs azure-only optimal {azure_only} \
         ({migrated_files}/{} files ever migrate at $0.05/GB egress)",
        trace.len()
    );
}
