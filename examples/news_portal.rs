//! News-portal workload with the §5.2 aggregation enhancement: article
//! pages bundle several assets (text, images, scripts) that are requested
//! together, so aggregating hot bundles cuts per-operation charges.
//!
//! Walks the full Algorithm 2 loop week by week — evaluate Ω on last
//! week's concurrency, select the top-Ψ bundles, rebuild the trace, tier
//! with Greedy — and compares against the unaggregated run (the Fig. 13
//! comparison, with Greedy standing in for the trained agent so the
//! example runs in seconds).
//!
//! ```text
//! cargo run --release --example news_portal
//! ```

use minicost::prelude::*;
use tracegen::CoRequestModel;

fn main() {
    // Articles: small files, strong weekly cycle, heavy co-access.
    let trace_cfg = TraceConfig {
        files: 1_500,
        days: 28,
        seed: 1001,
        mean_size_mb: 20.0,
        seasonal_share: 0.7,
        ..TraceConfig::default()
    };
    let trace = Trace::generate(&trace_cfg);
    let model = CostModel::new(PricingPolicy::paper_2020());

    // Pages: groups of 2-5 assets sharing most of their requests.
    let groups = CoRequestModel { groups: 120, min_size: 2, max_size: 5, level: 0.9, seed: 5 }
        .generate(&trace);
    println!("{} files, {} co-request bundles", trace.len(), groups.len());

    let sim_cfg = SimConfig::default();
    let weeks = trace.days / 7;
    let psi = 40;

    // Baseline: no aggregation, Greedy tiering, whole horizon.
    let baseline = simulate(&trace, &model, &mut GreedyPolicy, &sim_cfg).total_cost();

    // Enhancement: weekly Algorithm 2 rounds. Week w's selection uses week
    // w-1's concurrency statistics (week 0 runs unaggregated).
    let mut planner = AggregationPlanner::new(psi, groups.len());
    let mut enhanced_total = Money::ZERO;
    for week in 0..weeks {
        let active: Vec<usize> = if week == 0 {
            Vec::new()
        } else {
            let window = (week - 1) * 7..week * 7;
            let omegas: Vec<Omega> = groups
                .iter()
                .map(|g| Omega::evaluate(g, &trace, &model, Tier::Hot, window.clone()))
                .collect();
            planner.evaluate(&omegas)
        };
        let week_trace =
            apply_aggregation(&trace, &groups, &active).day_window(week * 7..(week + 1) * 7);
        let run = simulate(&week_trace, &model, &mut GreedyPolicy, &sim_cfg);
        println!("week {week}: {} bundles active, cost {}", active.len(), run.total_cost());
        enhanced_total += run.total_cost();
    }

    println!("\nwithout aggregation: {baseline}");
    println!("with aggregation:    {enhanced_total}");
    let delta = baseline - enhanced_total;
    println!(
        "aggregation saved {} ({:.2}%)",
        delta,
        100.0 * delta.as_dollars() / baseline.as_dollars()
    );
}
