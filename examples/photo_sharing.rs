//! Photo-sharing workload: a large catalog of media files where a small
//! fraction goes viral each week — the motivating scenario of the paper's
//! introduction ("suppose a cloud customer assigns a data file to the cold
//! storage, and then unexpectedly the file's request frequency increases
//! significantly").
//!
//! Demonstrates per-bucket cost attribution (the Fig. 8 view) and how much
//! of the total bill the bursty tail drives.
//!
//! ```text
//! cargo run --release --example photo_sharing
//! ```

use minicost::prelude::*;
use tracegen::analysis::{bucket_histogram, CV_BUCKET_LABELS};

fn main() {
    // Photos: larger files (250 MB mean), stronger burst tail than the
    // default mix, weekly sharing cycles.
    let trace_cfg = TraceConfig {
        files: 3_000,
        days: 28,
        seed: 77,
        mean_size_mb: 250.0,
        bucket_mix: [0.70, 0.12, 0.09, 0.06, 0.03], // heavier viral tail
        write_ratio: 0.005,                         // media is read-dominated
        ..TraceConfig::default()
    };
    let trace = Trace::generate(&trace_cfg);
    let model = CostModel::new(PricingPolicy::paper_2020());

    let hist = bucket_histogram(&trace);
    println!("variability mix (files per CV bucket):");
    for (label, count) in CV_BUCKET_LABELS.iter().zip(hist.counts) {
        println!("  {label:>8}: {count}");
    }

    let sim_cfg = SimConfig::default();
    let hot = simulate(&trace, &model, &mut HotPolicy, &sim_cfg);
    let greedy = simulate(&trace, &model, &mut GreedyPolicy, &sim_cfg);
    let mut opt_policy = OptimalPolicy::plan(&trace, &model, sim_cfg.initial_tier);
    let opt = simulate(&trace, &model, &mut opt_policy, &sim_cfg);

    println!("\nper-bucket 4-week cost (the Fig. 8 view):");
    println!("{:>8} {:>14} {:>14} {:>14}", "bucket", "hot", "greedy", "optimal");
    let hot_b = bucket_costs(&trace, &hot.per_file);
    let greedy_b = bucket_costs(&trace, &greedy.per_file);
    let opt_b = bucket_costs(&trace, &opt.per_file);
    for (i, label) in CV_BUCKET_LABELS.iter().enumerate() {
        println!(
            "{label:>8} {:>14} {:>14} {:>14}",
            hot_b[i].to_string(),
            greedy_b[i].to_string(),
            opt_b[i].to_string()
        );
    }

    let savings = hot.total_cost() - opt.total_cost();
    println!(
        "\ntotal: hot {} | greedy {} | optimal {}",
        hot.total_cost(),
        greedy.total_cost(),
        opt.total_cost()
    );
    println!(
        "optimal tiering saves {} ({:.1}%) over always-hot for this catalog",
        savings,
        100.0 * savings.as_dollars() / hot.total_cost().as_dollars()
    );
}
