//! Quickstart: generate a workload, compare the paper's five strategies,
//! and print a normalized cost table.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use minicost::prelude::*;

fn main() {
    // 1. A synthetic Wikipedia-like trace: 2,000 files over 5 weeks, with
    //    the paper's Fig. 2 mix of stationary and bursty files.
    let trace_cfg = TraceConfig { files: 2_000, days: 35, seed: 42, ..TraceConfig::default() };
    let trace = Trace::generate(&trace_cfg);
    println!(
        "trace: {} files x {} days, {:.1}M total reads",
        trace.len(),
        trace.days,
        trace.total_reads() as f64 / 1e6
    );

    // 2. Azure Block Blob pricing (the paper's policy).
    let model = CostModel::new(PricingPolicy::paper_2020());

    // 3. Train MiniCost on an 80% split, evaluate everything on the rest.
    let split = trace.split(0.8, 1);
    println!("training MiniCost on {} files ...", split.train.len());
    let mut cfg = MiniCostConfig::fast();
    cfg.a3c.total_updates = 1_500;
    cfg.a3c.seed = 7;
    let agent = MiniCost::train(&split.train, &model, &cfg);
    if let Some(rate) = agent.final_optimal_rate() {
        println!("  final optimal-action rate during training: {:.1}%", rate * 100.0);
    }

    // 4. Head-to-head on the held-out 20%.
    let sim_cfg = SimConfig::default();
    let test = &split.test;
    let mut optimal = OptimalPolicy::plan(test, &model, sim_cfg.initial_tier);
    let runs = vec![
        simulate(test, &model, &mut HotPolicy, &sim_cfg),
        simulate(test, &model, &mut ColdPolicy, &sim_cfg),
        simulate(test, &model, &mut GreedyPolicy, &sim_cfg),
        simulate(test, &model, &mut agent.policy(), &sim_cfg),
        simulate(test, &model, &mut optimal, &sim_cfg),
    ];

    let reference = runs.last().expect("non-empty").total_cost();
    println!("\n{:<10} {:>14} {:>12} {:>9}", "policy", "total cost", "vs optimal", "changes");
    for run in &runs {
        println!(
            "{:<10} {:>14} {:>11.3}x {:>9}",
            run.policy_name,
            run.total_cost().to_string(),
            run.total_cost().as_dollars() / reference.as_dollars(),
            run.tier_changes
        );
    }
    println!(
        "\nMiniCost decision latency: {:.3} ms/day for {} files",
        runs[3].decision_millis.iter().sum::<f64>() / runs[3].decision_millis.len() as f64,
        test.len()
    );

    // 5. Agents persist as JSON and reload bit-identically.
    let path = std::env::temp_dir().join("minicost-quickstart-agent.json");
    agent.save(&path).expect("save agent");
    let reloaded = minicost::MiniCost::load(&path).expect("load agent");
    assert_eq!(agent.result.actor_params, reloaded.result.actor_params);
    println!("agent saved to and reloaded from {}", path.display());
    std::fs::remove_file(&path).ok();
}
