//! Integration of the §5.2 aggregation enhancement with the simulator and
//! the tier-assignment policies: the Fig. 13 pipeline.

use minicost::prelude::*;
use tracegen::CoRequestModel;

fn setup() -> (Trace, CostModel) {
    let trace = Trace::generate(&TraceConfig {
        files: 150,
        days: 28,
        seed: 1313,
        ..TraceConfig::default()
    });
    (trace, CostModel::new(PricingPolicy::azure_blob_2020()))
}

/// One full Algorithm 2 round: evaluate Ω on a trailing window, select
/// top-Ψ, materialize, simulate.
#[test]
fn weekly_aggregation_rounds_run_end_to_end() {
    let (trace, model) = setup();
    let groups = CoRequestModel { groups: 25, seed: 4, ..Default::default() }.generate(&trace);
    let mut planner = AggregationPlanner::new(8, groups.len());

    let mut total_active = 0;
    for week in 0..3usize {
        let window = week * 7..(week + 1) * 7;
        let omegas: Vec<Omega> = groups
            .iter()
            .map(|g| Omega::evaluate(g, &trace, &model, Tier::Hot, window.clone()))
            .collect();
        let active = planner.evaluate(&omegas);
        assert!(active.len() <= 8 + total_active, "psi bound plus carryover");
        total_active = active.len();

        let merged = apply_aggregation(&trace, &groups, &active);
        assert_eq!(merged.files.len(), trace.files.len() + active.len());
        let result = simulate(&merged, &model, &mut GreedyPolicy, &SimConfig::default());
        assert_eq!(result.per_file.len(), merged.files.len());
    }
}

#[test]
fn aggregation_never_hurts_when_planner_is_selective() {
    // With Ω-gated selection the aggregated trace must cost no more than
    // the plain trace under the same (optimal) tiering, measured on the
    // same evaluation window the Ω values were computed from.
    let (trace, model) = setup();
    let groups =
        CoRequestModel { groups: 30, level: 0.9, seed: 8, ..Default::default() }.generate(&trace);

    let omegas: Vec<Omega> = groups
        .iter()
        .map(|g| Omega::evaluate(g, &trace, &model, Tier::Hot, 0..trace.days))
        .collect();
    // Select only clearly-beneficial groups.
    let active: Vec<usize> = (0..groups.len()).filter(|&i| omegas[i].0 > 1000.0).collect();

    let cfg = SimConfig::default();
    let plain =
        simulate(&trace, &model, &mut OptimalPolicy::plan(&trace, &model, cfg.initial_tier), &cfg)
            .total_cost();
    let merged = apply_aggregation(&trace, &groups, &active);
    let aggregated = simulate(
        &merged,
        &model,
        &mut OptimalPolicy::plan(&merged, &model, cfg.initial_tier),
        &cfg,
    )
    .total_cost();

    if active.is_empty() {
        assert_eq!(aggregated, plain);
    } else {
        assert!(
            aggregated <= plain,
            "selective aggregation must not raise cost: {aggregated} vs {plain}"
        );
    }
}

#[test]
fn aggregating_everything_blindly_can_backfire() {
    // Counterpart of the paper's warning ("aggregation may backfire"):
    // force-activating every group regardless of Ω is allowed by the API
    // but is not guaranteed to help. We only assert the pipeline stays
    // consistent; cost may go either way.
    let (trace, model) = setup();
    let groups = CoRequestModel { groups: 10, seed: 2, ..Default::default() }.generate(&trace);
    let all: Vec<usize> = (0..groups.len()).collect();
    let merged = apply_aggregation(&trace, &groups, &all);
    let result = simulate(&merged, &model, &mut HotPolicy, &SimConfig::default());
    let by_file: Money = result.per_file.iter().sum();
    assert_eq!(by_file, result.total_cost());
}

#[test]
fn planner_lifecycle_across_shifting_omegas() {
    // Groups drift in and out of profitability across weeks; the active
    // set must follow with the two-week eviction lag.
    let mut planner = AggregationPlanner::new(2, 3);
    // Week 1: groups 0 and 1 profitable.
    assert_eq!(planner.evaluate(&[Omega(5.0), Omega(3.0), Omega(-1.0)]), vec![0, 1]);
    // Week 2: group 0 collapses; group 2 becomes best.
    assert_eq!(
        planner.evaluate(&[Omega(-2.0), Omega(4.0), Omega(6.0)]),
        vec![0, 1, 2],
        "group 0 keeps one grace week"
    );
    // Week 3: group 0 still negative — evicted.
    assert_eq!(planner.evaluate(&[Omega(-2.0), Omega(4.0), Omega(6.0)]), vec![1, 2]);
}

#[test]
fn aggregate_files_inherit_tiering_decisions() {
    // The appended replica is a first-class file: Optimal may freely tier
    // it, and the ledger covers it.
    let (trace, model) = setup();
    let groups = CoRequestModel { groups: 5, seed: 6, ..Default::default() }.generate(&trace);
    let active: Vec<usize> = (0..groups.len()).collect();
    let merged = apply_aggregation(&trace, &groups, &active);
    let cfg = SimConfig::default();
    let mut opt = OptimalPolicy::plan(&merged, &model, cfg.initial_tier);
    let result = simulate(&merged, &model, &mut opt, &cfg);
    assert_eq!(result.per_file.len(), merged.files.len());
    // Replica ledger entries exist and are non-negative.
    for ix in trace.files.len()..merged.files.len() {
        assert!(result.per_file[ix] >= Money::ZERO);
    }
}
