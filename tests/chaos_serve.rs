//! Chaos soak suite (DESIGN.md §11): under any seeded *recoverable*
//! `FaultPlan`, the supervised serve loop must finish with cost ledgers
//! bit-identical to the fault-free batch run, with every recovery action
//! recorded in a deterministic `IncidentLog` — and a corrupted newest
//! checkpoint must restore from a rotated predecessor without manual
//! intervention. Batch comparisons run at the environment's
//! `MINICOST_WORKERS` setting (CI runs the suite at 1 and 4).
//!
//! Recoverability here is arithmetic, not luck: `FaultPlan::chaos` caps
//! total injections (`max_faults` 6) below the supervisor's default retry
//! allowance (8), so no retry loop can exhaust and every delivery anomaly
//! is read-repaired from the durable log.

use minicost::prelude::*;
use std::path::{Path, PathBuf};

fn setup() -> (Trace, CostModel) {
    (
        Trace::generate(&TraceConfig::small(30, 15, 23)),
        CostModel::new(PricingPolicy::azure_blob_2020()),
    )
}

/// A tiny-but-real trained agent; decisions are a deterministic function
/// of its (seeded) parameters, which is all ledger equality needs.
fn trained_policy(trace: &Trace, model: &CostModel) -> RlPolicy {
    let mut cfg = MiniCostConfig::fast();
    cfg.a3c.workers = 1;
    cfg.a3c.total_updates = 30;
    MiniCost::train(trace, model, &cfg).policy()
}

fn scratch_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("minicost-chaos-{}-{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Batch config at the environment's worker count — under CI this pits the
/// chaos-recovered ledgers against both the single-threaded and the
/// sharded engine.
fn batch_cfg(decide_every: usize) -> SimConfig {
    SimConfig::builder()
        .seed(23)
        .decide_every(decide_every)
        .workers(default_workers())
        .build()
        .expect("valid sim config")
}

fn assert_bit_identical(streamed: &SimResult, batch: &SimResult, what: &str) {
    assert_eq!(streamed.daily, batch.daily, "{what}: daily breakdowns differ");
    assert_eq!(streamed.per_file, batch.per_file, "{what}: per-file ledgers differ");
    assert_eq!(streamed.tier_changes, batch.tier_changes, "{what}: tier changes differ");
    assert_eq!(streamed.occupancy, batch.occupancy, "{what}: occupancy differs");
}

fn chaos_sup(seed: u64) -> SuperviseConfig {
    SuperviseConfig { fault_plan: Some(FaultPlan::chaos(seed)), ..SuperviseConfig::default() }
}

/// Flips one payload byte of a checkpoint file on disk — the out-of-band
/// corruption (cosmic ray, bad copy) the v2 checksum exists to catch.
fn corrupt_snapshot(path: &Path) {
    let mut bytes = std::fs::read(path).expect("snapshot on disk");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(path, &bytes).expect("write corrupted snapshot");
}

#[test]
fn recoverable_chaos_preserves_ledgers_bit_for_bit() {
    let (trace, model) = setup();
    let rl = trained_policy(&trace, &model);
    let mut policies: Vec<Box<dyn Policy>> =
        vec![Box::new(HotPolicy), Box::new(GreedyPolicy), Box::new(rl)];
    let mut any_incident = false;
    for policy in &mut policies {
        let name = policy.as_mut().name().to_owned();
        let batch = simulate(&trace, &model, policy.as_mut(), &batch_cfg(1));
        for chaos_seed in [1u64, 7, 23] {
            let dir = scratch_dir(&format!("soak-{name}-{chaos_seed}"));
            let cfg = ServeConfig {
                checkpoint_every: 2,
                checkpoint_path: Some(dir.join("snapshot.json")),
                ..ServeConfig::default()
            };
            let report = Supervisor::new(chaos_sup(chaos_seed))
                .run(&trace, &model, policy.as_mut(), &cfg)
                .expect("chaos() plans are recoverable by budget arithmetic");
            assert_bit_identical(&report.result, &batch, &format!("{name} seed {chaos_seed}"));
            assert_eq!(report.days_served_through, trace.days);
            any_incident |= !report.incidents.is_empty();

            // Replaying the identical plan in a fresh scratch dir must
            // reproduce the incident log bit-for-bit (virtual clock, no
            // wall time anywhere in the recovery path).
            let dir2 = scratch_dir(&format!("soak-replay-{name}-{chaos_seed}"));
            let cfg2 =
                ServeConfig { checkpoint_path: Some(dir2.join("snapshot.json")), ..cfg.clone() };
            let replay = Supervisor::new(chaos_sup(chaos_seed))
                .run(&trace, &model, policy.as_mut(), &cfg2)
                .expect("replay of a recoverable plan");
            assert_eq!(
                report.incidents, replay.incidents,
                "{name} seed {chaos_seed}: incident log must be deterministic"
            );
            assert_eq!(report.epochs, replay.epochs);
            assert_eq!(report.degraded_epochs, replay.degraded_epochs);
            let _ = std::fs::remove_dir_all(&dir);
            let _ = std::fs::remove_dir_all(&dir2);
        }
    }
    assert!(any_incident, "the chaos plans must have injected at least one fault");
}

#[test]
fn kill_and_restore_under_chaos_replays_identically() {
    let (trace, model) = setup();
    let rl = trained_policy(&trace, &model);
    let mut policies: Vec<Box<dyn Policy>> = vec![Box::new(GreedyPolicy), Box::new(rl)];
    for policy in &mut policies {
        let name = policy.as_mut().name().to_owned();
        let dir = scratch_dir(&format!("kill-{name}"));
        let base = ServeConfig {
            checkpoint_every: 2,
            checkpoint_path: Some(dir.join("snapshot.json")),
            ..ServeConfig::default()
        };

        // Phase 1: serve 8 of 15 days under chaos, then "crash".
        let cut = ServeConfig { max_days: Some(8), ..base.clone() };
        let partial = Supervisor::new(chaos_sup(11))
            .run(&trace, &model, policy.as_mut(), &cut)
            .expect("phase 1 under chaos");
        assert_eq!(partial.days_served_through, 8);
        assert!(partial.checkpoints_written > 0);

        // Phase 2: a fresh process (new supervisor, new injector, fresh
        // chaos schedule) restores from whatever rotation slot survived
        // and finishes the horizon.
        let resumed = Supervisor::new(chaos_sup(12))
            .run(&trace, &model, policy.as_mut(), &base)
            .expect("phase 2 restore under chaos");
        let day = resumed.resumed_from_day.expect("must resume from a checkpoint");
        assert!(day <= 8, "restored state cannot be ahead of the kill point");

        let batch = simulate(&trace, &model, policy.as_mut(), &batch_cfg(1));
        assert_bit_identical(&resumed.result, &batch, &format!("{name} kill/restore"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn corrupted_newest_checkpoint_restores_from_rotation() {
    let (trace, model) = setup();
    let dir = scratch_dir("rotate");
    let path = dir.join("snapshot.json");
    let base = ServeConfig {
        checkpoint_every: 2,
        checkpoint_path: Some(path.clone()),
        ..ServeConfig::default()
    };

    // Seed base, `.1`, and `.2` rotation slots, then corrupt the newest.
    let cut = ServeConfig { max_days: Some(10), ..base.clone() };
    serve(&trace, &model, &mut GreedyPolicy, &cut).expect("seeding run");
    for slot in ["snapshot.json.1", "snapshot.json.2"] {
        assert!(dir.join(slot).exists(), "{slot} must exist after rotation");
    }
    corrupt_snapshot(&path);

    // Recovery needs no manual intervention: restore detects the checksum
    // failure, rolls back one slot, and replays the rest of the horizon to
    // the exact fault-free ledgers.
    let recovered = serve(&trace, &model, &mut GreedyPolicy, &base).expect("rotated restore");
    assert!(recovered.resumed_from_day.is_some());
    assert!(
        recovered.incidents.count(IncidentKind::CheckpointCorrupt) >= 1,
        "the corrupt slot must be recorded: {}",
        recovered.incidents.summary()
    );
    assert_eq!(recovered.incidents.count(IncidentKind::RolledBack), 1);
    let batch = simulate(&trace, &model, &mut GreedyPolicy, &batch_cfg(1));
    assert_bit_identical(&recovered.result, &batch, "restore after corruption");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fully_corrupt_rotation_set_is_unrecoverable() {
    let (trace, model) = setup();
    let dir = scratch_dir("unrecoverable");
    let path = dir.join("snapshot.json");
    let base = ServeConfig {
        checkpoint_every: 1,
        checkpoint_path: Some(path.clone()),
        checkpoint_keep: 1,
        max_days: Some(5),
        ..ServeConfig::default()
    };
    serve(&trace, &model, &mut GreedyPolicy, &base).expect("seeding run");
    corrupt_snapshot(&path);
    corrupt_snapshot(&dir.join("snapshot.json.1"));

    let err = serve(&trace, &model, &mut GreedyPolicy, &base);
    assert!(
        matches!(err, Err(ServeError::Unrecoverable(_))),
        "every slot corrupt must abort, got {err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn degraded_mode_pins_epochs_to_the_fallback_policy() {
    let (trace, model) = setup();
    // An unlimited-budget plan that fails *every* policy step: retries can
    // never succeed, so each epoch must fall through to the fallback.
    let always_failing = FaultPlan { policy_step_permille: 1000, ..FaultPlan::quiet(3) };

    // With a fallback, the run completes and every decision is the
    // fallback's: the ledgers equal a clean always-hot run bit-for-bit.
    let sup_cfg = SuperviseConfig {
        fault_plan: Some(always_failing.clone()),
        degraded: Some(DegradedPolicy::Hot),
        ..SuperviseConfig::default()
    };
    let report = Supervisor::new(sup_cfg)
        .run(&trace, &model, &mut GreedyPolicy, &ServeConfig::default())
        .expect("degraded mode must keep serving");
    assert_eq!(report.degraded_epochs, report.epochs);
    assert_eq!(report.incidents.count(IncidentKind::Degraded) as u64, report.epochs);
    let hot = simulate(&trace, &model, &mut HotPolicy, &batch_cfg(1));
    assert_eq!(report.result.daily, hot.daily, "degraded run must bill as always-hot");
    assert_eq!(report.result.per_file, hot.per_file);
    assert_eq!(report.result.occupancy, hot.occupancy);

    // Without a fallback, the same plan exhausts the retry budget.
    let no_fallback =
        SuperviseConfig { fault_plan: Some(always_failing), ..SuperviseConfig::default() };
    let err = Supervisor::new(no_fallback).run(
        &trace,
        &model,
        &mut GreedyPolicy,
        &ServeConfig::default(),
    );
    assert!(matches!(err, Err(ServeError::RetriesExhausted { .. })), "{err:?}");
}
