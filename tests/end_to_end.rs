//! End-to-end integration: generate a calibrated trace, train a MiniCost
//! agent on the 80% split, evaluate on the held-out 20%, and check the
//! whole pipeline against the offline optimum — the paper's experimental
//! protocol (§6.1) in miniature.

use minicost::prelude::*;
use rl::Env;
use std::sync::Arc;

fn setup() -> (Trace, CostModel) {
    let trace = Trace::generate(&TraceConfig {
        files: 120,
        days: 35,
        seed: 2020,
        ..TraceConfig::default()
    });
    (trace, CostModel::new(PricingPolicy::azure_blob_2020()))
}

#[test]
fn full_pipeline_train_and_evaluate() {
    let (trace, model) = setup();
    let split = trace.split(0.8, 1);
    assert_eq!(split.train.len() + split.test.len(), trace.len());

    // Train on the training split with a compact budget.
    let mut cfg = MiniCostConfig::fast();
    cfg.a3c.total_updates = 600;
    cfg.a3c.seed = 7;
    let agent = MiniCost::train(&split.train, &model, &cfg);
    assert!(agent.result.updates >= 600);

    // Evaluate everything on the held-out split.
    let sim_cfg = SimConfig::default();
    let mut rl_policy = agent.policy();
    let rl = simulate(&split.test, &model, &mut rl_policy, &sim_cfg);
    let hot = simulate(&split.test, &model, &mut HotPolicy, &sim_cfg);
    let cold = simulate(&split.test, &model, &mut ColdPolicy, &sim_cfg);
    let greedy = simulate(&split.test, &model, &mut GreedyPolicy, &sim_cfg);
    let mut optimal = OptimalPolicy::plan(&split.test, &model, sim_cfg.initial_tier);
    let opt = simulate(&split.test, &model, &mut optimal, &sim_cfg);

    // Hard invariants: Optimal is the lower bound for everyone.
    for result in [&rl, &hot, &cold, &greedy] {
        assert!(
            opt.total_cost() <= result.total_cost(),
            "optimal {} must not exceed {} ({})",
            opt.total_cost(),
            result.total_cost(),
            result.policy_name
        );
    }
    // Greedy cannot lose to both static baselines simultaneously.
    assert!(greedy.total_cost() <= hot.total_cost().max(cold.total_cost()));

    // The trained agent beats at least one static baseline even with this
    // tiny training budget (the Fig. 7 ordering is asserted at full scale
    // by the experiment harness; here we check the pipeline is sane).
    assert!(
        rl.total_cost() <= hot.total_cost().max(cold.total_cost()),
        "rl {} vs hot {} cold {}",
        rl.total_cost(),
        hot.total_cost(),
        cold.total_cost()
    );
}

#[test]
fn environment_and_policy_agree_on_features() {
    // A state produced by the training env must be consumable by the
    // deployed policy's network: widths stay in lockstep across crates.
    let (trace, model) = setup();
    let cfg = MiniCostConfig::fast();
    let env = TieringEnv::new(
        Arc::new(trace),
        Arc::new(model),
        TieringEnvConfig { features: cfg.features, ..Default::default() },
    );
    assert_eq!(env.state_dim(), cfg.net_spec().state_dim());
    assert_eq!(env.n_actions(), cfg.net_spec().actions);
}

#[test]
fn forecast_feeds_trace_analysis() {
    // The Fig. 4 pipeline: per-bucket ARIMA error percentiles over a trace.
    use forecast::{Arima, ErrorSummary, Forecaster};
    use tracegen::analysis::bucket_members;

    let trace =
        Trace::generate(&TraceConfig { files: 80, days: 28, seed: 5, ..TraceConfig::default() });
    let members = bucket_members(&trace);
    let horizon = 7;
    let model = Arima::weekly_default();

    let mut any_bucket_with_summary = false;
    for bucket in members.iter() {
        let mut errors = Vec::new();
        for &ix in bucket {
            let file = &trace.files[ix];
            let history: Vec<f64> = file.reads[..21].iter().map(|&r| r as f64).collect();
            let truth: Vec<f64> = file.reads[21..28].iter().map(|&r| r as f64).collect();
            let pred = model.forecast(&history, horizon);
            errors.extend(forecast::error::forecast_errors(&truth, &pred));
        }
        if let Some(summary) = ErrorSummary::from_errors(&errors) {
            assert!(summary.p01 <= summary.p99);
            any_bucket_with_summary = true;
        }
    }
    assert!(any_bucket_with_summary);
}

#[test]
fn money_ledgers_are_exact_across_the_stack() {
    // The same run accounted two ways (per file vs per day) must agree to
    // the micro-dollar, across splits and policies.
    let (trace, model) = setup();
    let cfg = SimConfig::default();
    for policy in [&mut HotPolicy as &mut dyn Policy, &mut GreedyPolicy] {
        let result = simulate(&trace, &model, policy, &cfg);
        let by_file: Money = result.per_file.iter().sum();
        assert_eq!(by_file, result.total_cost());
        let by_bucket: Money = bucket_costs(&trace, &result.per_file).iter().sum();
        assert_eq!(by_bucket, result.total_cost());
    }
}

#[test]
fn multi_csp_pricing_is_plug_compatible() {
    // §4.2.1: "Γ can be easily adjusted for multiple CSPs" — the entire
    // pipeline must run unchanged under a different pricing policy.
    let trace = Trace::generate(&TraceConfig::small(50, 21, 3));
    for policy in [PricingPolicy::azure_blob_2020(), PricingPolicy::aws_s3_like()] {
        let model = CostModel::new(policy);
        let cfg = SimConfig::default();
        let mut opt = OptimalPolicy::plan(&trace, &model, cfg.initial_tier);
        let opt_run = simulate(&trace, &model, &mut opt, &cfg);
        let hot_run = simulate(&trace, &model, &mut HotPolicy, &cfg);
        assert!(opt_run.total_cost() <= hot_run.total_cost());
    }
}
