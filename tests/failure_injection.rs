//! Failure-injection integration tests: degenerate inputs that a long-lived
//! deployment will eventually see must degrade gracefully, never panic
//! (except where the API contract says "panics").

use minicost::prelude::*;
use tracegen::{FileId, FileSeries};

fn model() -> CostModel {
    CostModel::new(PricingPolicy::paper_2020())
}

/// Validated config: default tier/cadence, explicit seed, worker count from
/// `MINICOST_WORKERS` (CI runs this suite at 1 and 4 workers).
fn sim_cfg() -> SimConfig {
    SimConfig::builder().seed(0).build().expect("valid sim config")
}

#[test]
fn zero_size_files_cost_only_operations() {
    let file =
        FileSeries { id: FileId(0), size_gb: 0.0, reads: vec![100, 0, 50], writes: vec![1, 0, 0] };
    let trace = Trace { days: 3, files: vec![file] };
    let m = model();
    let cfg = sim_cfg();
    for policy in [&mut HotPolicy as &mut dyn Policy, &mut GreedyPolicy] {
        let run = simulate(&trace, &m, policy, &cfg);
        assert!(run.total_cost() >= Money::ZERO);
    }
    // The optimal planner handles zero sizes (change costs become the flat
    // op fee only).
    let mut opt = OptimalPolicy::plan(&trace, &m, Tier::Hot);
    let run = simulate(&trace, &m, &mut opt, &cfg);
    assert_eq!(run.total_cost(), opt.planned_cost);
}

#[test]
fn single_day_horizon() {
    let trace = Trace::generate(&TraceConfig::small(20, 1, 1));
    let m = model();
    let cfg = sim_cfg();
    let hot = simulate(&trace, &m, &mut HotPolicy, &cfg);
    let mut opt = OptimalPolicy::plan(&trace, &m, cfg.initial_tier);
    let opt_run = simulate(&trace, &m, &mut opt, &cfg);
    assert_eq!(hot.days(), 1);
    assert!(opt_run.total_cost() <= hot.total_cost());
}

#[test]
fn single_file_trace_trains_and_evaluates() {
    // The training env must handle a one-file trace (episode sampling
    // degenerates to that file).
    let trace = Trace::generate(&TraceConfig::small(1, 14, 2));
    let m = model();
    let mut cfg = MiniCostConfig::fast();
    cfg.a3c.workers = 1;
    cfg.a3c.total_updates = 30;
    let agent = MiniCost::train(&trace, &m, &cfg);
    let run = simulate(&trace, &m, &mut agent.policy(), &sim_cfg());
    assert_eq!(run.per_file.len(), 1);
}

#[test]
fn all_zero_traffic_trace() {
    let files = (0..10)
        .map(|i| FileSeries { id: FileId(i), size_gb: 0.1, reads: vec![0; 7], writes: vec![0; 7] })
        .collect();
    let trace = Trace { days: 7, files };
    let m = model();
    let cfg = sim_cfg();
    // Optimal sends everything to archive (pure storage minimization).
    let mut opt = OptimalPolicy::plan(&trace, &m, cfg.initial_tier);
    let run = simulate(&trace, &m, &mut opt, &cfg);
    let archive_only: Money = trace
        .files
        .iter()
        .map(|f| minicost::optimal::plan_cost(f, &m, cfg.initial_tier, &[Tier::Archive; 7]))
        .sum();
    assert_eq!(run.total_cost(), archive_only);
}

#[test]
fn degenerate_flat_pricing_trains_without_panic() {
    // Under flat pricing every action has zero regret; the shaped reward is
    // identically zero and training must still complete.
    let trace = Trace::generate(&TraceConfig::small(30, 14, 3));
    let m = CostModel::new(PricingPolicy::flat());
    let mut cfg = MiniCostConfig::fast();
    cfg.a3c.workers = 1;
    cfg.a3c.total_updates = 30;
    let agent = MiniCost::train(&trace, &m, &cfg);
    let run = simulate(&trace, &m, &mut agent.policy(), &sim_cfg());
    assert!(run.total_cost() > Money::ZERO);
}

#[test]
fn forecasters_survive_pathological_histories() {
    use forecast::{Arima, Ewma, Forecaster, Naive, SeasonalNaive};
    let histories: Vec<Vec<f64>> = vec![
        vec![],
        vec![0.0],
        vec![0.0; 100],
        vec![1e12; 50],
        (0..50).map(|i| if i % 2 == 0 { 0.0 } else { 1e6 }).collect(),
    ];
    let forecasters: Vec<Box<dyn Forecaster>> = vec![
        Box::new(Arima::weekly_default()),
        Box::new(Arima::new(0, 0, 0)),
        Box::new(Naive),
        Box::new(SeasonalNaive::new(7)),
        Box::new(Ewma::new(0.5)),
    ];
    for history in &histories {
        for f in &forecasters {
            let out = f.forecast(history, 7);
            assert_eq!(out.len(), 7);
            assert!(
                out.iter().all(|v| v.is_finite() && *v >= 0.0),
                "{} on {:?} -> {:?}",
                f.name(),
                &history.iter().take(3).collect::<Vec<_>>(),
                out
            );
        }
    }
}

#[test]
fn aggregation_with_degenerate_groups() {
    let trace = Trace::generate(&TraceConfig::small(30, 14, 4));
    // A group whose concurrency exceeds nothing (all zeros).
    let group =
        tracegen::CoRequestGroup { members: vec![FileId(0), FileId(1)], concurrent: vec![0; 14] };
    let m = model();
    let omega = Omega::evaluate(&group, &trace, &m, Tier::Hot, 0..14);
    assert!(!omega.is_beneficial());
    let merged = apply_aggregation(&trace, std::slice::from_ref(&group), &[0]);
    // Member series unchanged; replica exists with zero reads.
    assert_eq!(merged.files[0].reads, trace.files[0].reads);
    assert_eq!(merged.files.last().unwrap().reads, vec![0; 14]);
}

#[test]
fn predictive_policy_on_idle_trace() {
    let files = (0..5)
        .map(|i| FileSeries {
            id: FileId(i),
            size_gb: 0.1,
            reads: vec![0; 14],
            writes: vec![0; 14],
        })
        .collect();
    let trace = Trace { days: 14, files };
    let m = model();
    let mut policy = PredictivePolicy::new(forecast::Naive, 7);
    let run = simulate(&trace, &m, &mut policy, &sim_cfg());
    assert_eq!(run.days(), 14);
}
