//! Policy-conformance suite: every shipped policy, driven purely through
//! `dyn Policy`, must honor the batch-first trait contract the sharded
//! engine relies on (DESIGN.md §9) — `decide_batch` equals slot-wise
//! `decide_one`, forks decide identically to their originals, and the
//! decision for a file never depends on which other files share the batch.

use minicost::prelude::*;

fn setup() -> (Trace, CostModel) {
    (Trace::generate(&TraceConfig::small(60, 14, 21)), CostModel::new(PricingPolicy::paper_2020()))
}

/// The paper's five strategies as trait objects: Hot, Cold, Greedy,
/// MiniCost (briefly trained — conformance is independent of training
/// quality), and Optimal.
fn all_policies(trace: &Trace, model: &CostModel) -> Vec<Box<dyn Policy>> {
    let mut cfg = MiniCostConfig::fast();
    cfg.a3c.workers = 1;
    cfg.a3c.total_updates = 30;
    let agent = MiniCost::train(trace, model, &cfg);
    vec![
        Box::new(HotPolicy),
        Box::new(ColdPolicy),
        Box::new(GreedyPolicy),
        Box::new(agent.policy()),
        Box::new(OptimalPolicy::plan(trace, model, Tier::Hot)),
    ]
}

/// A deliberately non-uniform current-tier vector so conformance is not an
/// artifact of every file sitting in the same tier.
fn varied_tiers(n: usize) -> Vec<Tier> {
    let tiers: Vec<Tier> = Tier::all().collect();
    (0..n).map(|i| tiers[i % tiers.len()]).collect()
}

#[test]
fn names_are_nonempty_and_unique() {
    let (trace, model) = setup();
    let policies = all_policies(&trace, &model);
    let names: Vec<&str> = policies.iter().map(|p| p.name()).collect();
    for name in &names {
        assert!(!name.is_empty());
    }
    let mut unique = names.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), names.len(), "duplicate policy names: {names:?}");
}

#[test]
fn decide_fleet_returns_one_tier_per_file_every_day() {
    let (trace, model) = setup();
    for policy in &mut all_policies(&trace, &model) {
        let mut current = vec![Tier::Hot; trace.len()];
        for day in 0..trace.days {
            current = policy.decide_fleet(day, &trace, &model, &current);
            assert_eq!(current.len(), trace.len(), "{} day {day}", policy.name());
        }
    }
}

#[test]
fn decide_batch_matches_slotwise_decide_one() {
    let (trace, model) = setup();
    // A strided sub-fleet batch, as a shard would present it.
    let batch: Vec<usize> = (0..trace.len()).step_by(3).collect();
    let current = varied_tiers(batch.len());
    let fleet = FleetState::from_trace(&trace);
    for policy in &all_policies(&trace, &model) {
        for day in [0usize, 1, 7, trace.days - 1] {
            let ctx = DecisionContext {
                day,
                fleet: &fleet,
                model: &model,
                batch: &batch,
                current: &current,
            };
            let batched = policy.fork().decide_batch(&ctx);
            let mut single = policy.fork();
            let slotwise: Vec<Tier> = (0..ctx.len()).map(|s| single.decide_one(&ctx, s)).collect();
            assert_eq!(batched, slotwise, "{} day {day}", policy.name());
        }
    }
}

#[test]
fn forks_decide_identically_to_their_original() {
    let (trace, model) = setup();
    for policy in &mut all_policies(&trace, &model) {
        let mut fork = policy.fork();
        assert_eq!(policy.name(), fork.name());
        let mut current = vec![Tier::Hot; trace.len()];
        for day in 0..trace.days {
            let a = policy.decide_fleet(day, &trace, &model, &current);
            let b = fork.decide_fleet(day, &trace, &model, &current);
            assert_eq!(a, b, "{} day {day}", policy.name());
            current = a;
        }
    }
}

#[test]
fn decisions_are_independent_of_batch_composition() {
    // The core sharding precondition: a file's tier must not change when
    // its batch shrinks from the whole fleet to a singleton.
    let (trace, model) = setup();
    let full: Vec<usize> = (0..trace.len()).collect();
    let current = varied_tiers(trace.len());
    let columns = FleetState::from_trace(&trace);
    for policy in &all_policies(&trace, &model) {
        for day in [1usize, 5, 10] {
            let ctx = DecisionContext {
                day,
                fleet: &columns,
                model: &model,
                batch: &full,
                current: &current,
            };
            let fleet = policy.fork().decide_batch(&ctx);
            for ix in (0..trace.len()).step_by(7) {
                let one_batch = [ix];
                let one_current = [current[ix]];
                let one_ctx = DecisionContext {
                    day,
                    fleet: &columns,
                    model: &model,
                    batch: &one_batch,
                    current: &one_current,
                };
                let alone = policy.fork().decide_batch(&one_ctx);
                assert_eq!(
                    alone,
                    vec![fleet[ix]],
                    "{} day {day} file {ix}: decision depends on batch composition",
                    policy.name()
                );
            }
        }
    }
}

#[test]
fn empty_batch_is_legal() {
    let (trace, model) = setup();
    let batch: [usize; 0] = [];
    let current: [Tier; 0] = [];
    let fleet = FleetState::from_trace(&trace);
    let ctx =
        DecisionContext { day: 0, fleet: &fleet, model: &model, batch: &batch, current: &current };
    for policy in &mut all_policies(&trace, &model) {
        assert!(policy.decide_batch(&ctx).is_empty(), "{}", policy.name());
    }
}
