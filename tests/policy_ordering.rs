//! Cross-crate property tests of the paper's central cost-ordering claims
//! and the equivalence between the DP optimum and brute-force enumeration.

use minicost::prelude::*;
use proptest::prelude::*;
use tracegen::{FileId, FileSeries};

fn model() -> CostModel {
    CostModel::new(PricingPolicy::azure_blob_2020())
}

/// Validated config: default tier/cadence, explicit seed, worker count from
/// `MINICOST_WORKERS` (CI runs this suite at 1 and 4 workers).
fn sim_cfg() -> SimConfig {
    SimConfig::builder().seed(0).build().expect("valid sim config")
}

fn trace_from(reads: Vec<Vec<u64>>, size: f64) -> Trace {
    let days = reads.first().map_or(0, Vec::len);
    let files = reads
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            let writes = r.iter().map(|x| x / 100).collect();
            FileSeries { id: FileId(i as u32), size_gb: size, reads: r, writes }
        })
        .collect();
    Trace { days, files }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Optimal lower-bounds every other policy on arbitrary workloads.
    #[test]
    fn optimal_is_global_lower_bound(
        reads in proptest::collection::vec(
            proptest::collection::vec(0u64..30_000, 6), 1..6),
        size in 0.01f64..5.0,
    ) {
        let trace = trace_from(reads, size);
        let m = model();
        let cfg = sim_cfg();
        let opt = simulate(&trace, &m, &mut OptimalPolicy::plan(&trace, &m, cfg.initial_tier), &cfg).total_cost();
        for policy in [
            &mut HotPolicy as &mut dyn Policy,
            &mut ColdPolicy,
            &mut GreedyPolicy,
            &mut SingleTierPolicy::new(Tier::Archive),
        ] {
            let cost = simulate(&trace, &m, policy, &cfg).total_cost();
            prop_assert!(opt <= cost, "optimal {opt} vs {} {cost}", policy.name());
        }
    }

    /// The workspace's two independent optimum implementations agree on
    /// whole traces (DP per file == exponential enumeration per file).
    #[test]
    fn dp_matches_brute_force_on_traces(
        reads in proptest::collection::vec(
            proptest::collection::vec(0u64..50_000, 5), 1..4),
        size in 0.01f64..3.0,
    ) {
        let trace = trace_from(reads, size);
        let m = model();
        let mut brute_total = Money::ZERO;
        for file in &trace.files {
            let (_, cost) = brute_force_plan(file, &m, Tier::Hot);
            brute_total += cost;
        }
        let opt = OptimalPolicy::plan(&trace, &m, Tier::Hot);
        prop_assert_eq!(opt.planned_cost, brute_total);
    }

    /// Greedy never pays more than the better of the two static baselines:
    /// it can always mimic "stay put forever".
    #[test]
    fn greedy_dominates_worst_static(
        reads in proptest::collection::vec(
            proptest::collection::vec(0u64..20_000, 8), 1..5),
        size in 0.01f64..5.0,
    ) {
        let trace = trace_from(reads, size);
        let m = model();
        let cfg = sim_cfg();
        let greedy = simulate(&trace, &m, &mut GreedyPolicy, &cfg).total_cost();
        let hot = simulate(&trace, &m, &mut HotPolicy, &cfg).total_cost();
        let cold = simulate(&trace, &m, &mut ColdPolicy, &cfg).total_cost();
        prop_assert!(greedy <= hot.max(cold));
    }

    /// Under the degenerate flat pricing policy every strategy that never
    /// moves data costs the same, and Optimal finds exactly that cost.
    #[test]
    fn flat_pricing_removes_all_savings(
        reads in proptest::collection::vec(
            proptest::collection::vec(0u64..10_000, 5), 1..4),
    ) {
        let trace = trace_from(reads, 0.5);
        let m = CostModel::new(PricingPolicy::flat());
        let cfg = sim_cfg();
        let hot = simulate(&trace, &m, &mut HotPolicy, &cfg).total_cost();
        let cold = simulate(&trace, &m, &mut ColdPolicy, &cfg).total_cost();
        let opt = simulate(&trace, &m, &mut OptimalPolicy::plan(&trace, &m, cfg.initial_tier), &cfg).total_cost();
        prop_assert_eq!(hot, cold);
        prop_assert_eq!(opt, hot);
    }

    /// Scaling every file's traffic up cannot reduce any policy's cost.
    #[test]
    fn costs_are_monotone_in_traffic(
        reads in proptest::collection::vec(
            proptest::collection::vec(0u64..5_000, 6), 1..4),
        factor in 2u64..5,
    ) {
        let trace = trace_from(reads.clone(), 1.0);
        let scaled = trace_from(
            reads.iter().map(|f| f.iter().map(|&r| r * factor).collect()).collect(),
            1.0,
        );
        let m = model();
        let cfg = sim_cfg();
        for (a, b) in [
            (
                simulate(&trace, &m, &mut HotPolicy, &cfg).total_cost(),
                simulate(&scaled, &m, &mut HotPolicy, &cfg).total_cost(),
            ),
            (
                simulate(&trace, &m, &mut OptimalPolicy::plan(&trace, &m, Tier::Hot), &cfg).total_cost(),
                simulate(&scaled, &m, &mut OptimalPolicy::plan(&scaled, &m, Tier::Hot), &cfg).total_cost(),
            ),
        ] {
            prop_assert!(b >= a, "scaled {b} must cost at least {a}");
        }
    }
}

#[test]
fn ordering_holds_on_a_calibrated_trace() {
    // Deterministic version of the Fig. 7 ordering skeleton on a
    // realistically-mixed trace: Optimal <= Greedy <= max(Hot, Cold).
    // Uses the op-dominated paper_2020 pricing — the regime the paper's
    // evaluation implies (see PricingPolicy::paper_2020 docs).
    let trace =
        Trace::generate(&TraceConfig { files: 400, days: 35, seed: 99, ..TraceConfig::default() });
    let m = CostModel::new(PricingPolicy::paper_2020());
    let cfg = sim_cfg();
    let hot = simulate(&trace, &m, &mut HotPolicy, &cfg).total_cost();
    let cold = simulate(&trace, &m, &mut ColdPolicy, &cfg).total_cost();
    let greedy = simulate(&trace, &m, &mut GreedyPolicy, &cfg).total_cost();
    let opt = simulate(&trace, &m, &mut OptimalPolicy::plan(&trace, &m, cfg.initial_tier), &cfg)
        .total_cost();

    assert!(opt <= greedy);
    assert!(greedy <= hot.max(cold));
    // The calibrated mix leaves real savings on the table for the planner.
    assert!(
        opt.as_dollars() < 0.95 * hot.min(cold).as_dollars(),
        "optimal {opt} should save >5% vs best static {}",
        hot.min(cold)
    );
}
