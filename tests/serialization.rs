//! Serialization round-trips across the workspace: every artifact an
//! experiment persists (traces, pricing policies, sim results, trained
//! agents) must survive JSON exactly.

use minicost::prelude::*;
use minicost::sim::SimResult;

/// Validated config: default tier/cadence, explicit seed, worker count from
/// `MINICOST_WORKERS` (CI runs this suite at 1 and 4 workers).
fn sim_cfg() -> SimConfig {
    SimConfig::builder().seed(0).build().expect("valid sim config")
}

#[test]
fn trace_round_trips() {
    let trace = Trace::generate(&TraceConfig::small(25, 14, 11));
    let json = serde_json::to_string(&trace).unwrap();
    let back: Trace = serde_json::from_str(&json).unwrap();
    assert_eq!(trace, back);
}

#[test]
fn trace_config_round_trips() {
    let cfg = TraceConfig::default();
    let json = serde_json::to_string(&cfg).unwrap();
    let back: TraceConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(cfg, back);
}

#[test]
fn pricing_policies_round_trip() {
    for policy in
        [PricingPolicy::azure_blob_2020(), PricingPolicy::aws_s3_like(), PricingPolicy::flat()]
    {
        let json = serde_json::to_string(&policy).unwrap();
        let back: PricingPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(policy, back);
    }
}

#[test]
fn sim_result_round_trips_with_exact_money() {
    let trace = Trace::generate(&TraceConfig::small(30, 10, 12));
    let model = CostModel::new(PricingPolicy::azure_blob_2020());
    let result = simulate(&trace, &model, &mut GreedyPolicy, &sim_cfg());
    let json = serde_json::to_string(&result).unwrap();
    let back: SimResult = serde_json::from_str(&json).unwrap();
    assert_eq!(result.total_cost(), back.total_cost());
    assert_eq!(result.per_file, back.per_file);
    assert_eq!(result.tier_changes, back.tier_changes);
}

#[test]
fn money_survives_json_at_extremes() {
    for micros in [0i64, 1, -1, i64::MAX / 2, i64::MIN / 2] {
        let m = Money::from_micros(micros);
        let json = serde_json::to_string(&m).unwrap();
        let back: Money = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}

#[test]
fn trained_agent_round_trips_and_decides_identically() {
    let trace = Trace::generate(&TraceConfig::small(40, 21, 13));
    let model = CostModel::new(PricingPolicy::azure_blob_2020());
    let mut cfg = MiniCostConfig::fast();
    cfg.a3c.workers = 1;
    cfg.a3c.total_updates = 30;
    let agent = MiniCost::train(&trace, &model, &cfg);

    let json = serde_json::to_string(&agent).unwrap();
    let back: MiniCost = serde_json::from_str(&json).unwrap();

    let sim_cfg = sim_cfg();
    let a = simulate(&trace, &model, &mut agent.policy(), &sim_cfg);
    let b = simulate(&trace, &model, &mut back.policy(), &sim_cfg);
    assert_eq!(a.total_cost(), b.total_cost());
    assert_eq!(a.tier_changes, b.tier_changes);
}

#[test]
fn minicost_config_round_trips() {
    let cfg = MiniCostConfig::default();
    let json = serde_json::to_string(&cfg).unwrap();
    let back: MiniCostConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(cfg, back);
}

#[test]
fn co_request_groups_round_trip() {
    let trace = Trace::generate(&TraceConfig::small(30, 14, 14));
    let groups = tracegen::CoRequestModel::default().generate(&trace);
    let json = serde_json::to_string(&groups).unwrap();
    let back: Vec<tracegen::CoRequestGroup> = serde_json::from_str(&json).unwrap();
    assert_eq!(groups, back);
}
