//! Streaming-vs-batch equivalence suite (DESIGN.md §10): in exact mode the
//! online serving loop must reproduce the batch simulator's `Money`
//! ledgers bit-for-bit — for every policy, at every decision cadence, and
//! across a checkpoint/restore cycle, under any `MINICOST_WORKERS` setting
//! (CI runs the suite at 1 and 4). Wall-clock decision timings are the
//! only exempt fields, exactly as in the shard-determinism contract.

use minicost::prelude::*;
use std::path::PathBuf;

fn setup() -> (Trace, CostModel) {
    (
        Trace::generate(&TraceConfig::small(30, 15, 23)),
        CostModel::new(PricingPolicy::azure_blob_2020()),
    )
}

/// A tiny-but-real trained agent; decisions are a deterministic function
/// of its (seeded) parameters, which is all equivalence needs.
fn trained_policy(trace: &Trace, model: &CostModel) -> RlPolicy {
    let mut cfg = MiniCostConfig::fast();
    cfg.a3c.workers = 1;
    cfg.a3c.total_updates = 30;
    MiniCost::train(trace, model, &cfg).policy()
}

fn scratch_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("minicost-serve-{}-{test}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Batch config at the environment's worker count — under CI this runs the
/// comparison against both the single-threaded and the sharded engine.
fn batch_cfg(decide_every: usize) -> SimConfig {
    SimConfig::builder()
        .seed(23)
        .decide_every(decide_every)
        .workers(default_workers())
        .build()
        .expect("valid sim config")
}

fn assert_bit_identical(streamed: &SimResult, batch: &SimResult, what: &str) {
    assert_eq!(streamed.daily, batch.daily, "{what}: daily breakdowns differ");
    assert_eq!(streamed.per_file, batch.per_file, "{what}: per-file ledgers differ");
    assert_eq!(streamed.tier_changes, batch.tier_changes, "{what}: tier changes differ");
    assert_eq!(streamed.occupancy, batch.occupancy, "{what}: occupancy differs");
}

#[test]
fn streaming_matches_batch_for_every_policy() {
    let (trace, model) = setup();
    let rl = trained_policy(&trace, &model);
    let mut policies: Vec<Box<dyn Policy>> =
        vec![Box::new(HotPolicy), Box::new(ColdPolicy), Box::new(GreedyPolicy), Box::new(rl)];
    for policy in &mut policies {
        let batch = simulate(&trace, &model, policy.as_mut(), &batch_cfg(1));
        let report = serve(&trace, &model, policy.as_mut(), &ServeConfig::default())
            .expect("serve runs clean");
        assert_bit_identical(&report.result, &batch, policy.as_mut().name());
        assert_eq!(report.days_served_through, trace.days);
        assert!(report.resumed_from_day.is_none());
    }
}

#[test]
fn streaming_matches_batch_at_coarser_cadence() {
    let (trace, model) = setup();
    for decide_every in [3usize, 7] {
        let batch = simulate(&trace, &model, &mut GreedyPolicy, &batch_cfg(decide_every));
        let cfg = ServeConfig { decide_every, ..ServeConfig::default() };
        let report = serve(&trace, &model, &mut GreedyPolicy, &cfg).expect("serve runs clean");
        assert_bit_identical(&report.result, &batch, &format!("cadence {decide_every}"));
    }
}

#[test]
fn interrupted_run_resumes_bit_identically() {
    let (trace, model) = setup();
    let rl = trained_policy(&trace, &model);
    let mut policies: Vec<Box<dyn Policy>> = vec![Box::new(GreedyPolicy), Box::new(rl)];
    for policy in &mut policies {
        let name = policy.as_mut().name().to_owned();
        let dir = scratch_dir(&format!("resume-{name}"));
        let path = dir.join("snapshot.json");
        let base = ServeConfig {
            checkpoint_every: 2,
            checkpoint_path: Some(path.clone()),
            ..ServeConfig::default()
        };

        // Phase 1: serve 7 of 15 days, then stop (shutdown snapshot).
        let cut = ServeConfig { max_days: Some(7), ..base.clone() };
        let partial = serve(&trace, &model, policy.as_mut(), &cut).expect("partial run");
        assert_eq!(partial.days_served_through, 7);
        assert!(partial.checkpoints_written > 0);
        assert!(path.exists(), "snapshot must be on disk");

        // Phase 2: a fresh invocation restores and finishes the horizon.
        let resumed = serve(&trace, &model, policy.as_mut(), &base).expect("resumed run");
        assert_eq!(resumed.resumed_from_day, Some(7));
        assert_eq!(resumed.days_served_through, trace.days);

        let batch = simulate(&trace, &model, policy.as_mut(), &batch_cfg(1));
        assert_bit_identical(&resumed.result, &batch, &format!("{name} resumed"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn kill_mid_epoch_replays_from_an_older_checkpoint() {
    let (trace, model) = setup();
    let dir = scratch_dir("kill");
    let path = dir.join("snapshot.json");
    let stale = dir.join("stale.json");
    let base = ServeConfig {
        checkpoint_every: 1,
        checkpoint_path: Some(path.clone()),
        ..ServeConfig::default()
    };

    // Serve 5 days and keep a copy of that snapshot.
    let cut = ServeConfig { max_days: Some(5), ..base.clone() };
    serve(&trace, &model, &mut GreedyPolicy, &cut).expect("first segment");
    std::fs::copy(&path, &stale).expect("preserve old snapshot");

    // Serve further (days 5..10), then simulate a crash that lost every
    // checkpoint since day 5 by restoring the stale snapshot file.
    let cut2 = ServeConfig { max_days: Some(10), ..base.clone() };
    serve(&trace, &model, &mut GreedyPolicy, &cut2).expect("second segment");
    std::fs::copy(&stale, &path).expect("roll snapshot back");

    // The recovery run replays days 5.. from the old state; stateless
    // per-(file, day) event seeding makes the replayed suffix — and thus
    // the final ledgers — bit-identical to the never-killed run.
    let recovered = serve(&trace, &model, &mut GreedyPolicy, &base).expect("recovery run");
    assert_eq!(recovered.resumed_from_day, Some(5));
    let batch = simulate(&trace, &model, &mut GreedyPolicy, &batch_cfg(1));
    assert_bit_identical(&recovered.result, &batch, "replay after rollback");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn incompatible_snapshots_are_rejected() {
    let (trace, model) = setup();
    let dir = scratch_dir("mismatch");
    let path = dir.join("snapshot.json");
    let base = ServeConfig {
        checkpoint_every: 1,
        checkpoint_path: Some(path.clone()),
        max_days: Some(4),
        ..ServeConfig::default()
    };
    serve(&trace, &model, &mut GreedyPolicy, &base).expect("seed snapshot");

    // Wrong policy.
    let err = serve(&trace, &model, &mut HotPolicy, &base);
    assert!(matches!(err, Err(ServeError::SnapshotMismatch(_))), "{err:?}");
    // Wrong stream seed.
    let err = serve(&trace, &model, &mut GreedyPolicy, &ServeConfig { seed: 99, ..base.clone() });
    assert!(matches!(err, Err(ServeError::SnapshotMismatch(_))), "{err:?}");
    // Wrong cadence.
    let err =
        serve(&trace, &model, &mut GreedyPolicy, &ServeConfig { decide_every: 2, ..base.clone() });
    assert!(matches!(err, Err(ServeError::SnapshotMismatch(_))), "{err:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bounded_mode_keeps_billing_exact_for_feature_free_policies() {
    let (trace, model) = setup();
    // Hot/Cold never read features, so even fully sketched statistics must
    // leave their ledgers bit-identical to batch: billing is exact by
    // construction, not by tracking accuracy.
    for (mk, name) in [
        (Box::new(HotPolicy) as Box<dyn Policy>, "hot"),
        (Box::new(ColdPolicy) as Box<dyn Policy>, "cold"),
    ] {
        let mut policy = mk;
        let batch = simulate(&trace, &model, policy.as_mut(), &batch_cfg(1));
        let cfg = ServeConfig { max_tracked: Some(2), ..ServeConfig::default() };
        let report = serve(&trace, &model, policy.as_mut(), &cfg).expect("bounded serve");
        assert_bit_identical(&report.result, &batch, name);
    }
}
