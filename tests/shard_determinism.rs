//! Shard-determinism integration suite: the merged result of the parallel
//! engine must be bit-identical to the single-threaded simulation for every
//! policy, every worker count, and any shard execution order. Wall-clock
//! decision timings are the only fields exempt from the contract
//! (DESIGN.md §9).

use minicost::prelude::*;

fn setup() -> (Trace, CostModel) {
    (Trace::generate(&TraceConfig::small(67, 21, 17)), CostModel::new(PricingPolicy::paper_2020()))
}

fn all_policies(trace: &Trace, model: &CostModel) -> Vec<Box<dyn Policy>> {
    let mut cfg = MiniCostConfig::fast();
    cfg.a3c.workers = 1;
    cfg.a3c.total_updates = 30;
    let agent = MiniCost::train(trace, model, &cfg);
    vec![
        Box::new(HotPolicy),
        Box::new(ColdPolicy),
        Box::new(GreedyPolicy),
        Box::new(agent.policy()),
        Box::new(OptimalPolicy::plan(trace, model, Tier::Hot)),
    ]
}

fn config(workers: usize) -> SimConfig {
    SimConfig::builder().seed(13).workers(workers).build().expect("valid sim config")
}

/// Asserts every contract-covered ledger matches; decision timings are
/// deliberately not compared.
fn assert_bit_identical(a: &SimResult, b: &SimResult, what: &str) {
    assert_eq!(a.policy_name, b.policy_name, "{what}");
    assert_eq!(a.daily, b.daily, "{what}: daily breakdowns differ");
    assert_eq!(a.per_file, b.per_file, "{what}: per-file ledgers differ");
    assert_eq!(a.tier_changes, b.tier_changes, "{what}: tier changes differ");
    assert_eq!(a.occupancy, b.occupancy, "{what}: occupancy differs");
}

#[test]
fn every_policy_is_bit_identical_across_worker_counts() {
    let (trace, model) = setup();
    for policy in &mut all_policies(&trace, &model) {
        let base = simulate(&trace, &model, policy.as_mut(), &config(1));
        for workers in [2usize, 4, 7] {
            let sharded = simulate(&trace, &model, policy.as_mut(), &config(workers));
            let what = format!("{} workers={workers}", base.policy_name);
            assert_bit_identical(&base, &sharded, &what);
            // The cumulative daily series — what figs 7/13 plot — matches
            // day by day, not just in total.
            for day in 0..trace.days {
                assert_eq!(base.cumulative_cost(day), sharded.cumulative_cost(day), "{what}");
            }
            assert_eq!(sharded.shard_decision_millis.len(), workers, "{what}");
        }
    }
}

#[test]
fn reused_decision_buffers_never_leak_stale_tiers() {
    // The engine hoists one decision buffer outside the day loop and
    // refills it via `decide_batch_into`; with `decide_every > 1` the
    // buffer carries a previous decision day's contents into the next
    // refill. Ledgers must stay bit-identical across worker counts (and
    // against the owned-buffer wrapper semantics) regardless.
    let (trace, model) = setup();
    for policy in &mut all_policies(&trace, &model) {
        let cadenced = |workers: usize| {
            SimConfig::builder()
                .seed(13)
                .workers(workers)
                .decide_every(3)
                .build()
                .expect("valid sim config")
        };
        let base = simulate(&trace, &model, policy.as_mut(), &cadenced(1));
        for workers in [4usize, 7] {
            let sharded = simulate(&trace, &model, policy.as_mut(), &cadenced(workers));
            let what = format!("{} decide_every=3 workers={workers}", base.policy_name);
            assert_bit_identical(&base, &sharded, &what);
        }
    }
}

#[test]
fn shard_seed_changes_partition_but_never_the_ledgers() {
    let (trace, model) = setup();
    let base = simulate(&trace, &model, &mut GreedyPolicy, &config(1));
    for seed in [0u64, 1, 99, u64::MAX] {
        let cfg = SimConfig::builder().seed(seed).workers(4).build().expect("valid sim config");
        let run = simulate(&trace, &model, &mut GreedyPolicy, &cfg);
        assert_bit_identical(&base, &run, &format!("seed={seed}"));
    }
}

#[test]
fn merge_is_independent_of_shard_execution_order() {
    // Runs the shards sequentially in a permuted order, then merges in
    // partition order: the merged ledgers must match the single-threaded
    // run exactly, proving the merge never leans on execution order.
    let (trace, model) = setup();
    let cfg = config(4);
    let fleet = FleetState::from_trace(&trace);
    let shards = partition(&trace, cfg.seed, cfg.workers);
    assert_eq!(shards.len(), 4);

    let mut runs: Vec<Option<ShardRun>> = (0..shards.len()).map(|_| None).collect();
    // A fixed permutation of {0,1,2,3} with no fixed points.
    for &s in &[2usize, 0, 3, 1] {
        let mut policy = GreedyPolicy;
        runs[s] = Some(run_shard(&fleet, &model, &mut policy, &cfg, &shards[s]));
    }
    let ordered: Vec<ShardRun> = runs.into_iter().map(|r| r.expect("all shards ran")).collect();
    let merged = merge_shards("greedy", trace.days, trace.len(), &ordered);

    let base = simulate(&trace, &model, &mut GreedyPolicy, &config(1));
    assert_bit_identical(&base, &merged, "permuted shard execution");
}

#[test]
fn money_ledgers_survive_permuted_merge_order() {
    // Integer micro-dollar accumulation is exact, so even merging the
    // shard list in a different order cannot perturb the Money ledgers
    // (only the shard_decision_millis ordering may differ).
    let (trace, model) = setup();
    let cfg = config(4);
    let fleet = FleetState::from_trace(&trace);
    let shards = partition(&trace, cfg.seed, cfg.workers);
    let runs: Vec<ShardRun> =
        shards.iter().map(|s| run_shard(&fleet, &model, &mut GreedyPolicy, &cfg, s)).collect();

    let forward = merge_shards("greedy", trace.days, trace.len(), &runs);
    let reversed: Vec<ShardRun> = runs.iter().rev().cloned().collect();
    let backward = merge_shards("greedy", trace.days, trace.len(), &reversed);
    assert_bit_identical(&forward, &backward, "reversed merge order");
}

#[test]
fn columnar_fleet_state_preserves_ledgers_across_worker_counts() {
    // The columnar FleetState is the only fleet state the engine reads.
    // Hand-running the shard loop over one shared FleetState at workers=1
    // and 4 must reproduce the end-to-end `simulate` ledgers exactly —
    // the columnar layout cannot perturb a single Money microdollar.
    let (trace, model) = setup();
    let fleet = FleetState::from_trace(&trace);
    for workers in [1usize, 4] {
        let cfg = config(workers);
        let shards = partition(&trace, cfg.seed, workers);
        let runs: Vec<ShardRun> =
            shards.iter().map(|s| run_shard(&fleet, &model, &mut GreedyPolicy, &cfg, s)).collect();
        let merged = merge_shards("greedy", trace.days, trace.len(), &runs);
        let direct = simulate(&trace, &model, &mut GreedyPolicy, &cfg);
        assert_bit_identical(&merged, &direct, &format!("columnar workers={workers}"));
    }
}

#[test]
fn rl_policy_sharding_survives_serde_round_trip() {
    // A loaded agent must shard exactly like the freshly trained one: the
    // fork path rebuilds the network from serialized parameters.
    let (trace, model) = setup();
    let mut cfg = MiniCostConfig::fast();
    cfg.a3c.workers = 1;
    cfg.a3c.total_updates = 30;
    let agent = MiniCost::train(&trace, &model, &cfg);
    let back: MiniCost = serde_json::from_str(&serde_json::to_string(&agent).unwrap()).unwrap();

    let a = simulate(&trace, &model, &mut agent.policy(), &config(4));
    let b = simulate(&trace, &model, &mut back.policy(), &config(4));
    assert_bit_identical(&a, &b, "serde round-trip under sharding");
}
