//! Store-attached serving suite (DESIGN.md §15): with a tiered object
//! store attached, every tier change the decision loop bills is a
//! *physical* migration — copy, verify, commit, delete — and the run must
//! uphold the headline invariant (billed tier-change bytes == journal
//! committed bytes) while staying bit-identical to the storeless batch
//! simulator, under vdev chaos, retry exhaustion (pinning), and an
//! injected crash between a migration's copy and its commit.

use minicost::prelude::*;
use std::path::PathBuf;
use store::{MigrateConfig, PoolBuild};

fn setup() -> (Trace, CostModel) {
    (
        Trace::generate(&TraceConfig::small(24, 12, 19)),
        CostModel::new(PricingPolicy::azure_blob_2020()),
    )
}

/// A tiny-but-real trained agent; decisions are a deterministic function
/// of its (seeded) parameters, which is all ledger equality needs.
fn trained_policy(trace: &Trace, model: &CostModel) -> RlPolicy {
    let mut cfg = MiniCostConfig::fast();
    cfg.a3c.workers = 1;
    cfg.a3c.total_updates = 30;
    MiniCost::train(trace, model, &cfg).policy()
}

fn scratch_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("minicost-store-{}-{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn batch_cfg() -> SimConfig {
    SimConfig::builder()
        .seed(19)
        .decide_every(1)
        .workers(default_workers())
        .build()
        .expect("valid sim config")
}

fn mem_store() -> Option<StoreConfig> {
    Some(StoreConfig { build: PoolBuild::Memory, migrate: MigrateConfig::default() })
}

fn dir_store(dir: &std::path::Path) -> Option<StoreConfig> {
    Some(StoreConfig { build: PoolBuild::Dir(dir.join("pool")), migrate: MigrateConfig::default() })
}

fn assert_bit_identical(streamed: &SimResult, batch: &SimResult, what: &str) {
    assert_eq!(streamed.daily, batch.daily, "{what}: daily breakdowns differ");
    assert_eq!(streamed.per_file, batch.per_file, "{what}: per-file ledgers differ");
    assert_eq!(streamed.tier_changes, batch.tier_changes, "{what}: tier changes differ");
    assert_eq!(streamed.occupancy, batch.occupancy, "{what}: occupancy differs");
}

/// The invariant plus the internal consistency every clean run must show.
fn assert_store_clean(report: &ServeReport, objects: usize, what: &str) {
    let s = report.store.as_ref().unwrap_or_else(|| panic!("{what}: store report missing"));
    assert_eq!(s.objects, objects, "{what}: every tracked file must be resident");
    assert_eq!(
        s.committed_bytes, s.billed_change_bytes,
        "{what}: billed tier-change bytes must equal journal-committed bytes"
    );
}

#[test]
fn store_attached_serve_is_bit_identical_to_batch() {
    let (trace, model) = setup();
    let rl = trained_policy(&trace, &model);
    let mut policies: Vec<Box<dyn Policy>> =
        vec![Box::new(HotPolicy), Box::new(GreedyPolicy), Box::new(rl)];
    for policy in &mut policies {
        let name = policy.as_mut().name().to_owned();
        let batch = simulate(&trace, &model, policy.as_mut(), &batch_cfg());
        let cfg = ServeConfig { store: mem_store(), ..ServeConfig::default() };
        let report =
            serve(&trace, &model, policy.as_mut(), &cfg).expect("fault-free store-attached serve");
        assert_bit_identical(&report.result, &batch, &name);
        assert_store_clean(&report, trace.files.len(), &name);
        let s = report.store.as_ref().expect("store report");
        assert_eq!(s.jobs_pinned, 0, "{name}: nothing pins without faults");
        assert_eq!(s.jobs_rolled_back + s.jobs_replayed, 0, "{name}: nothing to recover");
        assert_eq!(
            s.jobs_committed, report.result.tier_changes as u64,
            "{name}: every billed tier change must be a committed migration"
        );
        if report.result.tier_changes > 0 {
            assert!(s.migration_ms > 0, "{name}: migrations must consume virtual time");
        }
    }
}

#[test]
fn store_chaos_soak_preserves_ledgers_and_incident_determinism() {
    // `store_chaos` arms every retryable vdev site under a budget (6)
    // below the migration retry allowance (8), so recoverability is
    // arithmetic: no job can pin and the ledgers must match the
    // fault-free batch bit-for-bit — the chaos_serve contract extended to
    // the store path.
    let (trace, model) = setup();
    let rl = trained_policy(&trace, &model);
    let mut policies: Vec<Box<dyn Policy>> = vec![Box::new(GreedyPolicy), Box::new(rl)];
    let mut any_incident = false;
    for policy in &mut policies {
        let name = policy.as_mut().name().to_owned();
        let batch = simulate(&trace, &model, policy.as_mut(), &batch_cfg());
        for chaos_seed in [1u64, 9, 27] {
            let dir = scratch_dir(&format!("soak-{name}-{chaos_seed}"));
            let cfg = ServeConfig { store: dir_store(&dir), ..ServeConfig::default() };
            let sup = SuperviseConfig {
                fault_plan: Some(FaultPlan::store_chaos(chaos_seed)),
                ..SuperviseConfig::default()
            };
            let report = Supervisor::new(sup.clone())
                .run(&trace, &model, policy.as_mut(), &cfg)
                .expect("store_chaos plans are recoverable by budget arithmetic");
            assert_bit_identical(&report.result, &batch, &format!("{name} seed {chaos_seed}"));
            assert_store_clean(&report, trace.files.len(), &format!("{name} seed {chaos_seed}"));
            assert_eq!(report.store.as_ref().expect("store report").jobs_pinned, 0);
            any_incident |= !report.incidents.is_empty();

            // Replaying the identical plan in a fresh pool must reproduce
            // the incident log bit-for-bit (virtual clock everywhere).
            let dir2 = scratch_dir(&format!("soak-replay-{name}-{chaos_seed}"));
            let cfg2 = ServeConfig { store: dir_store(&dir2), ..cfg.clone() };
            let replay = Supervisor::new(sup)
                .run(&trace, &model, policy.as_mut(), &cfg2)
                .expect("replay of a recoverable plan");
            assert_eq!(
                report.incidents, replay.incidents,
                "{name} seed {chaos_seed}: incident log must be deterministic"
            );
            assert_eq!(report.store, replay.store, "store reports must replay identically");
            let _ = std::fs::remove_dir_all(&dir);
            let _ = std::fs::remove_dir_all(&dir2);
        }
    }
    assert!(any_incident, "the chaos plans must have injected at least one fault");
}

#[test]
fn exhausted_retries_pin_files_to_their_source_tier() {
    // Unlimited write faults: no migration can ever land its copy, so
    // every job exhausts its budget and pins. Graceful degradation means
    // the run *completes*, every file stays (and is billed) on its source
    // tier — bit-identical to an always-hot run — and the invariant holds
    // trivially at zero bytes on both sides.
    let (trace, model) = setup();
    let plan = FaultPlan { vdev_write_permille: 1000, ..FaultPlan::quiet(7) };
    let cfg = ServeConfig { store: mem_store(), ..ServeConfig::default() };
    let sup = SuperviseConfig { fault_plan: Some(plan), ..SuperviseConfig::default() };
    let report = Supervisor::new(sup)
        .run(&trace, &model, &mut GreedyPolicy, &cfg)
        .expect("pinning must degrade gracefully, not abort");
    let s = report.store.as_ref().expect("store report");
    assert!(s.jobs_pinned > 0, "greedy must have attempted at least one migration");
    assert_eq!(s.jobs_committed, 0, "no migration can commit under unlimited write faults");
    assert_eq!(s.committed_bytes, 0);
    assert_eq!(s.billed_change_bytes, 0, "pinned files must not be billed as moved");
    assert!(
        report.incidents.count(IncidentKind::MigrationPinned) > 0,
        "pins must be recorded: {}",
        report.incidents.summary()
    );
    assert!(report.incidents.count(IncidentKind::MigrationRetried) > 0);
    let hot = simulate(&trace, &model, &mut HotPolicy, &batch_cfg());
    assert_eq!(report.result.daily, hot.daily, "a fully pinned run must bill as always-hot");
    assert_eq!(report.result.per_file, hot.per_file);
    assert_eq!(report.result.occupancy, hot.occupancy);
}

#[test]
fn injected_crash_mid_migration_restores_and_replays_identically() {
    // Phase 1 runs under a one-shot `CrashCopy` plan: the process "dies"
    // between a verified copy and its commit record, leaving a torn
    // destination copy explained only by an `intent` line. Phase 2 is the
    // restart: journal recovery rolls the torn copy back (and rolls any
    // durable commits forward), the day replays, already-committed jobs
    // dedup against the journal, and the final ledgers are bit-identical
    // to the fault-free batch with billed == committed intact.
    let (trace, model) = setup();
    let batch = simulate(&trace, &model, &mut GreedyPolicy, &batch_cfg());
    for crash_seed in [4u64, 5, 6] {
        let dir = scratch_dir(&format!("crash-{crash_seed}"));
        let cfg = ServeConfig {
            checkpoint_every: 1,
            checkpoint_path: Some(dir.join("snapshot.json")),
            store: dir_store(&dir),
            ..ServeConfig::default()
        };
        let sup = SuperviseConfig {
            fault_plan: Some(FaultPlan::store_crash(crash_seed)),
            ..SuperviseConfig::default()
        };
        let err = Supervisor::new(sup).run(&trace, &model, &mut GreedyPolicy, &cfg);
        match &err {
            Err(ServeError::InjectedCrash(msg)) => {
                assert!(msg.contains("restart"), "crash must point at recovery: {msg}")
            }
            other => panic!("store_crash must abort the run mid-migration, got {other:?}"),
        }

        // The restart: fresh supervisor, quiet plan, same directory.
        let report = Supervisor::new(SuperviseConfig::default())
            .run(&trace, &model, &mut GreedyPolicy, &cfg)
            .expect("restart must recover the torn migration and finish");
        let s = report.store.as_ref().expect("store report");
        assert_eq!(s.jobs_rolled_back, 1, "exactly the crashed job must roll back");
        assert!(
            report.incidents.count(IncidentKind::MigrationRolledBack) >= 1,
            "rollback must be recorded: {}",
            report.incidents.summary()
        );
        assert_bit_identical(&report.result, &batch, &format!("crash seed {crash_seed}"));
        assert_store_clean(&report, trace.files.len(), &format!("crash seed {crash_seed}"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn crash_restore_dedups_already_committed_jobs() {
    // A crash plan that fires on a *later* consultation lets earlier jobs
    // of the same batch commit before the "kill". The restart replays the
    // whole day; the journal must dedup the committed jobs (skipped, not
    // re-copied) so their bytes count exactly once on both sides of the
    // invariant.
    let (trace, model) = setup();
    let batch = simulate(&trace, &model, &mut GreedyPolicy, &batch_cfg());
    let mut exercised = false;
    for seed in 0u64..40 {
        let plan = FaultPlan { crash_copy_permille: 300, max_faults: 1, ..FaultPlan::quiet(seed) };
        let dir = scratch_dir(&format!("dedup-{seed}"));
        let cfg = ServeConfig {
            checkpoint_every: 1,
            checkpoint_path: Some(dir.join("snapshot.json")),
            store: dir_store(&dir),
            ..ServeConfig::default()
        };
        let sup = SuperviseConfig { fault_plan: Some(plan), ..SuperviseConfig::default() };
        let first = Supervisor::new(sup).run(&trace, &model, &mut GreedyPolicy, &cfg);
        let crashed = matches!(first, Err(ServeError::InjectedCrash(_)));
        if !crashed {
            // This seed's schedule never fired within the run; clean
            // completion is fine but exercises nothing — try the next.
            let _ = std::fs::remove_dir_all(&dir);
            continue;
        }
        let report = Supervisor::new(SuperviseConfig::default())
            .run(&trace, &model, &mut GreedyPolicy, &cfg)
            .expect("restart after mid-batch crash");
        let s = report.store.as_ref().expect("store report");
        assert_bit_identical(&report.result, &batch, &format!("dedup seed {seed}"));
        assert_store_clean(&report, trace.files.len(), &format!("dedup seed {seed}"));
        assert_eq!(s.jobs_rolled_back, 1, "the crashed job itself must roll back");
        if s.jobs_skipped + s.jobs_replayed > 0 {
            // At least one job committed before the crash and was deduped
            // on replay instead of double-counted — the property at stake.
            exercised = true;
        }
        let _ = std::fs::remove_dir_all(&dir);
        if exercised {
            break;
        }
    }
    assert!(exercised, "no seed in the probe range produced a mid-batch crash with prior commits");
}

#[test]
fn memory_store_cannot_resume_from_a_checkpoint() {
    let (trace, model) = setup();
    let dir = scratch_dir("mem-resume");
    let cfg = ServeConfig {
        checkpoint_every: 1,
        checkpoint_path: Some(dir.join("snapshot.json")),
        store: mem_store(),
        ..ServeConfig::default()
    };
    // A fresh memory-store run with checkpoints is fine...
    let cut = ServeConfig { max_days: Some(6), ..cfg.clone() };
    serve(&trace, &model, &mut GreedyPolicy, &cut).expect("fresh memory-store run");
    // ...but resuming one is a config error: the pool died with the
    // process, so the checkpoint would describe objects that no longer
    // exist anywhere.
    let err = serve(&trace, &model, &mut GreedyPolicy, &cfg);
    assert!(
        matches!(err, Err(ServeError::Config(_))),
        "memory store + resume must be rejected, got {err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
