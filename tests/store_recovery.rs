//! Property tests of torn-migration recovery (DESIGN.md §15): kill the
//! process at an *arbitrary byte offset* during a migration's copy (or
//! between its commit and its cleanup), restart against the same
//! directory, and journal recovery must deterministically roll the torn
//! copy back (or the durable commit forward), leave the pool consistent,
//! and let a replay of the same decision batch converge to the exact
//! ledger of an uninterrupted run — every byte committed exactly once.

use pricing::Tier;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use store::{
    frame_object, recover, synth_payload, FileVdev, JobId, JobPhase, Journal, MigrateConfig,
    MigrationJob, Migrator, StoragePool,
};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn scratch_dir() -> PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("minicost-store-recovery-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn job_bytes(f: u64) -> u64 {
    300 + f * 77
}

fn jobs(n_files: u64) -> Vec<MigrationJob> {
    (0..n_files)
        .map(|f| MigrationJob {
            id: JobId { day: 1, file: f, from: Tier::Hot, to: Tier::Cool },
            logical_bytes: job_bytes(f),
        })
        .collect()
}

/// Opens "the process's" view of the pool + journal under `dir`.
fn open(dir: &std::path::Path) -> (StoragePool, Journal) {
    let pool = StoragePool::open_dir(dir).expect("open pool");
    let journal = Journal::open_file(&dir.join("journal.log")).expect("open journal");
    (pool, journal)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The exhaustive crash matrix: `committed_before` jobs finish
    /// cleanly, then the next job is killed either mid-copy (destination
    /// truncated to an arbitrary prefix, journal at `intent`) or between
    /// commit and cleanup (journal at `committed`, source still present),
    /// optionally with a torn tail line on the journal itself. Restart,
    /// recover, replay.
    #[test]
    fn kill_at_arbitrary_offset_recovers_and_replays_to_one_ledger(
        n_files in 2u64..6,
        torn_pick in 0u64..6,
        cut_permille in 0u32..=1000,
        after_commit in any::<bool>(),
        torn_tail in any::<bool>(),
    ) {
        let dir = scratch_dir();
        let torn = torn_pick % n_files;
        let batch = jobs(n_files);
        let total_bytes: u64 = batch.iter().map(|j| j.logical_bytes).sum();

        // ---- The doomed process: place the fleet, migrate a prefix,
        // then die mid-way through job `torn`.
        {
            let (mut pool, mut journal) = open(&dir);
            for f in 0..n_files {
                pool.put(f, Tier::Hot, job_bytes(f)).expect("initial placement");
            }
            let done = Migrator::new(MigrateConfig::default())
                .run_batch(&mut pool, &mut journal, &batch[..torn as usize])
                .expect("clean prefix batch");
            prop_assert_eq!(done.committed_jobs, torn);

            let id = batch[torn as usize].id;
            let bytes = batch[torn as usize].logical_bytes;
            let frame = frame_object(bytes, &synth_payload(id.file, bytes));
            journal.append(id, JobPhase::Intent, bytes).expect("intent");
            if after_commit {
                // Copy verified and commit durable; the kill lands before
                // the source delete.
                pool.write_frame(Tier::Cool, id.file, &frame, bytes, 0).expect("full copy");
                journal.append(id, JobPhase::Committed, bytes).expect("commit");
            } else {
                // Kill mid-copy: an arbitrary prefix of the frame lands.
                pool.write_frame(Tier::Cool, id.file, &frame, bytes, 0).expect("copy");
                let cool = FileVdev::open(&dir.join("cool"), None).expect("cool vdev");
                let path = cool.object_path(id.file);
                let cut = (frame.len() as u64 * u64::from(cut_permille) / 1000) as usize;
                std::fs::write(&path, &frame[..cut]).expect("truncate destination");
            }
            if torn_tail {
                // The kill also tore the journal's in-flight append.
                use std::io::Write;
                let mut f = std::fs::OpenOptions::new()
                    .append(true)
                    .open(dir.join("journal.log"))
                    .expect("journal file");
                f.write_all(b"fnv1a64:0123456789abcdef {\"seq\":99,\"jo").expect("torn tail");
            }
        }

        // ---- The restart: recovery must resolve the torn state without
        // manual intervention, deterministically.
        let (mut pool, mut journal) = open(&dir);
        prop_assert_eq!(journal.dropped_tail(), torn_tail, "torn tail detection");
        let report = recover(&mut pool, &mut journal).expect("recovery");
        let id = batch[torn as usize].id;
        if after_commit {
            prop_assert_eq!(&report.replayed, &vec![id], "durable commit rolls forward");
            prop_assert!(report.rolled_back.is_empty());
            prop_assert_eq!(pool.location(id.file), Some(Tier::Cool));
            prop_assert!(!pool.contains_at(Tier::Hot, id.file), "source must be cleaned");
        } else {
            prop_assert_eq!(&report.rolled_back, &vec![id], "torn copy rolls back");
            prop_assert!(report.replayed.is_empty());
            prop_assert_eq!(pool.location(id.file), Some(Tier::Hot));
            prop_assert!(!pool.contains_at(Tier::Cool, id.file), "torn copy must be deleted");
        }
        prop_assert!(pool.duplicate_keys().is_empty(), "no unresolved duplicates survive");
        for f in 0..torn {
            prop_assert_eq!(pool.location(f), Some(Tier::Cool), "prefix commits survive");
        }

        // Recovery is idempotent: a second crash-free restart finds
        // nothing left to repair.
        {
            let (mut pool2, mut journal2) = open(&dir);
            let again = recover(&mut pool2, &mut journal2).expect("idempotent recovery");
            prop_assert!(again.rolled_back.is_empty() && again.replayed.is_empty());
        }

        // ---- The replay: re-running the whole decision batch must skip
        // what the journal already holds durable, re-run what rolled
        // back, and land every file on its target with every byte
        // committed exactly once — the ledger of an uninterrupted run.
        let out = Migrator::new(MigrateConfig::default())
            .run_batch(&mut pool, &mut journal, &batch)
            .expect("replay batch");
        prop_assert!(!out.crashed);
        prop_assert!(out.pinned.is_empty());
        prop_assert_eq!(
            out.skipped_jobs,
            torn + u64::from(after_commit),
            "durable jobs dedup on replay"
        );
        prop_assert_eq!(out.committed_jobs + out.skipped_jobs, n_files);
        for f in 0..n_files {
            prop_assert_eq!(pool.location(f), Some(Tier::Cool));
            prop_assert!(!pool.contains_at(Tier::Hot, f));
        }
        prop_assert_eq!(
            journal.committed_bytes(),
            total_bytes,
            "every job's bytes must be committed exactly once across crash + replay"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
