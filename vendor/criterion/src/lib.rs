//! Offline stub of `criterion`: a coarse wall-clock benchmark harness.
//!
//! Implements the structural API the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `bench_function`,
//! `benchmark_group`/`bench_with_input`/`finish`, `iter`/`iter_batched`)
//! with simple median-of-runs timing instead of upstream's statistics.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted, unused).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new<P: std::fmt::Display>(name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Median per-iteration time of the most recent measurement.
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over a fixed iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed() / u32::try_from(self.iters.max(1)).unwrap_or(u32::MAX);
    }

    /// Times `routine` with a fresh `setup()` input per iteration; only the
    /// routine is (approximately) timed.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total / u32::try_from(self.iters.max(1)).unwrap_or(u32::MAX);
    }
}

/// The benchmark driver.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { iters: 32 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { elapsed: Duration::ZERO, iters: self.iters };
        f(&mut bencher);
        println!("bench {id:<48} {:>12.3?}/iter", bencher.elapsed);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{id}", self.name);
        self.criterion.bench_function(&full, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
