//! Offline stub of `parking_lot`: non-poisoning locks over `std::sync`.
//!
//! Matches the parking_lot API shape the workspace uses: `lock()` returns the
//! guard directly (no poisoning `Result`), and `into_inner()` returns the
//! value directly. A panicked holder simply releases the lock.

use std::sync::PoisonError;

/// A non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(MutexGuard(guard)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: still lockable after a holder panicked.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
