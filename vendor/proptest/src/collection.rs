//! Collection strategies (`proptest::collection` subset).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification for [`vec`]: an exact length or a half-open range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// Strategy producing `Vec`s of `element` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Builds a [`VecStrategy`].
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
