//! Offline stub of `proptest`: deterministic property testing.
//!
//! The `proptest!` macro expands each property into a plain `#[test]` that
//! draws `config.cases` inputs from the given strategies using an RNG seeded
//! from the test's module path — fully deterministic across runs, which is the
//! workspace-wide reproducibility invariant. Failing cases print their inputs
//! via the strategy bindings' `Debug` in the assertion message. No shrinking.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

use strategy::Strategy;

/// Strategy for "any value of `T`" ([`any`]).
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

/// Returns the canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> f64 {
        // Finite floats across a wide dynamic range.
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = (rng.next_u64() % 61) as i32 - 30;
        mantissa * 10f64.powi(exp)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut test_runner::TestRng) -> T {
        self.0.clone()
    }
}

/// The glob-import surface used by property tests.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
    };
}

/// Defines property tests. See the crate docs for the supported grammar:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u64..10, mut v in proptest::collection::vec(0i64..5, 0..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let mut __one_case = || $body;
                    __one_case();
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3i64..17, f in -2.0f64..2.0, n in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!(n < 5);
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0u64..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn exact_len_and_mut_binding(mut v in crate::collection::vec(0i64..10, 4)) {
            prop_assert_eq!(v.len(), 4);
            v.reverse();
            prop_assert_eq!(v.len(), 4);
        }

        #[test]
        fn nested_vec_and_option(
            grid in crate::collection::vec(crate::collection::vec(0u64..9, 3), 0..4),
            opt in crate::option::of(1u32..5),
        ) {
            prop_assert!(grid.len() < 4);
            prop_assume!(opt.is_some());
            prop_assert!(opt.unwrap_or(0) >= 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_caps_cases(x in any::<bool>()) {
            // Merely exercising the config path; both values are fine.
            prop_assert!(x || !x);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::from_name("fixed");
        let mut b = crate::test_runner::TestRng::from_name("fixed");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
