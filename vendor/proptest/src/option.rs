//! Option strategies (`proptest::option` subset).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Some` three times out of four.
pub struct OptionStrategy<S>(S);

/// Builds an [`OptionStrategy`] over `inner`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy(inner)
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.0.generate(rng))
        }
    }
}
