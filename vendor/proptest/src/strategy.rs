//! The `Strategy` trait and numeric-range strategies.

use crate::test_runner::TestRng;

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng), self.3.generate(rng))
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}
