//! Test configuration and the deterministic case RNG.

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Deterministic case RNG (xorshift64*), seeded from the test's name.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name via FNV-1a, so each property gets an
    /// independent but reproducible stream.
    #[must_use]
    pub fn from_name(name: &str) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash | 1 }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}
