//! Offline stub of the `rand` crate: the deterministic subset MiniCost uses.
//!
//! Only explicitly seeded construction is provided (`SeedableRng::seed_from_u64`
//! and `from_seed`). There is deliberately no `rand::rng()` / `thread_rng()` /
//! entropy seeding: the workspace's `seeded-rng-only` lint forbids them, and the
//! stub makes the forbidden constructors unrepresentable.

pub mod rngs;
pub mod seq;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Marker trait mirroring `rand::Rng`; blanket-implemented for every core RNG.
pub trait Rng: RngCore {}

impl<T: RngCore + ?Sized> Rng for T {}

/// Extension methods for sampling typed values (`rand`'s `random*` family).
pub trait RngExt: Rng {
    /// Samples a value of `T` from its standard distribution
    /// (uniform `[0, 1)` for floats, uniform over all values for integers).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<T: Rng + ?Sized> RngExt for T {}

/// Explicitly seeded RNG construction.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds the RNG from a full raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a single `u64` (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from their "standard" distribution.
pub trait StandardUniform: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce a uniform sample.
pub trait SampleRange {
    /// The element type of the range.
    type Output;

    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        use super::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }
}
