//! Slice sampling helpers (`rand::seq` subset).

use crate::{RngCore, RngExt};

/// In-place shuffling and element choice for slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Fisher–Yates shuffle driven by `rng`.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.random_range(0..self.len()))
        }
    }
}
