//! `Serialize`/`Deserialize` implementations for std types.

use crate::{DeError, Deserialize, Serialize, Value};
use std::collections::{BTreeMap, HashMap, VecDeque};

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let wide = match v {
                    Value::I64(n) => i128::from(*n),
                    Value::U64(n) => i128::from(*n),
                    other => return Err(DeError::expected(stringify!($t), other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = u64::try_from(*self).unwrap_or(u64::MAX);
                match i64::try_from(wide) {
                    Ok(n) => Value::I64(n),
                    Err(_) => Value::U64(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let wide = match v {
                    Value::I64(n) => i128::from(*n),
                    Value::U64(n) => i128::from(*n),
                    other => return Err(DeError::expected(stringify!($t), other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::I64(*self as i64)
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<isize, DeError> {
        i64::from_value(v).and_then(|n| {
            isize::try_from(n).map_err(|_| DeError(format!("{n} out of range for isize")))
        })
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap_or('\0')),
            other => Err(DeError::expected("single-char string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], DeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items).map_err(|_| DeError(format!("expected {N} elements, got {len}")))
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<VecDeque<T>, DeError> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<(A, B), DeError> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::expected("2-element array", other)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<(A, B, C), DeError> {
        match v {
            Value::Seq(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(DeError::expected("3-element array", other)),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<HashMap<String, V>, DeError> {
        match v {
            Value::Map(entries) => {
                entries.iter().map(|(k, val)| Ok((k.clone(), V::from_value(val)?))).collect()
            }
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<BTreeMap<String, V>, DeError> {
        match v {
            Value::Map(entries) => {
                entries.iter().map(|(k, val)| Ok((k.clone(), V::from_value(val)?))).collect()
            }
            other => Err(DeError::expected("object", other)),
        }
    }
}
