//! Offline stub of `serde`: a value-tree serialization framework.
//!
//! Instead of upstream's visitor architecture, types convert to and from a
//! JSON-like [`Value`] tree. `serde_json` (the sibling stub) prints and parses
//! that tree. The `#[derive(Serialize, Deserialize)]` macros cover the shapes
//! the MiniCost workspace uses: named-field structs, tuple structs (newtypes
//! serialize transparently), and unit-variant enums.

pub use serde_derive::{Deserialize, Serialize};

mod impls;

/// A serialized value tree (JSON data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, with insertion order preserved.
    Map(Vec<(String, Value)>),
}

/// A deserialization error with a human-readable path context.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// "expected X, got Y" constructor.
    #[must_use]
    pub fn expected(what: &str, got: &Value) -> DeError {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        };
        DeError(format!("expected {what}, got {kind}"))
    }

    /// A missing-field error.
    #[must_use]
    pub fn missing(field: &str) -> DeError {
        DeError(format!("missing field `{field}`"))
    }

    /// Wraps the error with the field it occurred in.
    #[must_use]
    pub fn in_field(self, field: &str) -> DeError {
        DeError(format!("{field}: {}", self.0))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from `v`.
    ///
    /// # Errors
    /// Returns [`DeError`] when `v` has the wrong shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up and deserializes a field of an object (derive-macro helper).
///
/// Missing keys deserialize from `null`, so `Option` fields default to `None`
/// while all other types produce a "missing field" error.
///
/// # Errors
/// Returns [`DeError`] when the field is absent (for non-optional types) or
/// has the wrong shape.
pub fn get_field<T: Deserialize>(map: &[(String, Value)], key: &str) -> Result<T, DeError> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v).map_err(|e| e.in_field(key)),
        None => T::from_value(&Value::Null).map_err(|_| DeError::missing(key)),
    }
}

/// Like [`get_field`], but an absent key produces `default()` instead of a
/// "missing field" error — the `#[serde(default)]` / `#[serde(default =
/// "path")]` derive-macro helper, used to keep old serialized payloads
/// loadable when a struct grows a field.
///
/// # Errors
/// Returns [`DeError`] only when the field is present with the wrong shape.
pub fn get_field_or<T: Deserialize>(
    map: &[(String, Value)],
    key: &str,
    default: impl FnOnce() -> T,
) -> Result<T, DeError> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v).map_err(|e| e.in_field(key)),
        None => Ok(default()),
    }
}
