//! `#[derive(Serialize, Deserialize)]` for the offline serde stub.
//!
//! Parses the derive input with a hand-written token walk (no `syn`), so it
//! supports exactly the shapes the MiniCost workspace derives:
//!
//! - structs with named fields  -> JSON objects
//! - one-field tuple structs    -> transparent newtypes
//! - multi-field tuple structs  -> JSON arrays
//! - unit structs               -> `null`
//! - enums with unit variants   -> variant-name strings
//!
//! Generics and data-carrying enum variants are rejected with a compile
//! error naming the unsupported shape.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field and its `#[serde(...)]` options.
struct FieldSpec {
    name: String,
    /// `Some(path)` when the field carries `#[serde(default)]` (the path is
    /// `Default::default`) or `#[serde(default = "path")]`.
    default: Option<String>,
}

/// The parsed shape of a derive input.
enum Shape {
    Named(Vec<FieldSpec>),
    Tuple(usize),
    Unit,
    UnitEnum(Vec<String>),
}

struct Input {
    name: String,
    shape: Shape,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap_or_default()
}

/// Skips `#[...]` attributes and visibility modifiers at `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]` (outer attribute / expanded doc comment).
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                // Optional `(crate)` / `(super)` / `(in path)` restriction.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Splits a token list on top-level commas, tracking `<...>` nesting so
/// commas inside generic arguments (e.g. `HashMap<String, u64>`) don't split.
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0usize;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                current.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
                current.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if !current.is_empty() {
                    out.push(std::mem::take(&mut current));
                }
            }
            other => current.push(other.clone()),
        }
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Parses the `#[serde(...)]` attributes preceding one named field.
///
/// Supported: `default` and `default = "path"`. Anything else inside a
/// `serde` attribute is rejected so unsupported real-serde options fail
/// loudly instead of being silently ignored. Non-`serde` attributes (doc
/// comments etc.) pass through untouched.
fn field_serde_default(field: &[TokenTree]) -> Result<Option<String>, String> {
    let mut i = 0usize;
    let mut default = None;
    while let (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g))) =
        (field.get(i), field.get(i + 1))
    {
        if p.as_char() != '#' || g.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        let is_serde =
            matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
        if is_serde {
            let Some(TokenTree::Group(args)) = inner.get(1) else {
                return Err("malformed #[serde(...)] attribute".to_string());
            };
            let args: Vec<TokenTree> = args.stream().into_iter().collect();
            match args.as_slice() {
                [TokenTree::Ident(id)] if id.to_string() == "default" => {
                    default = Some("::core::default::Default::default".to_string());
                }
                [TokenTree::Ident(id), TokenTree::Punct(eq), TokenTree::Literal(lit)]
                    if id.to_string() == "default" && eq.as_char() == '=' =>
                {
                    let raw = lit.to_string();
                    let path = raw.trim_matches('"');
                    if path.is_empty() || path.len() == raw.len() {
                        return Err(format!(
                            "#[serde(default = ...)] expects a quoted fn path, got {raw}"
                        ));
                    }
                    default = Some(path.to_string());
                }
                _ => {
                    return Err("serde stub derive supports only #[serde(default)] and \
                         #[serde(default = \"path\")]"
                        .to_string())
                }
            }
        }
        i += 2;
    }
    Ok(default)
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!("serde stub derive does not support generics on `{name}`"));
        }
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut fields = Vec::new();
                for field in split_commas(&body) {
                    let default =
                        field_serde_default(&field).map_err(|e| format!("{e} (in `{name}`)"))?;
                    let j = skip_attrs_and_vis(&field, 0);
                    match field.get(j) {
                        Some(TokenTree::Ident(id)) => {
                            fields.push(FieldSpec { name: id.to_string(), default });
                        }
                        other => return Err(format!("bad field in `{name}`: {other:?}")),
                    }
                }
                Ok(Input { name, shape: Shape::Named(fields) })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Input { name, shape: Shape::Tuple(split_commas(&body).len()) })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                Ok(Input { name, shape: Shape::Unit })
            }
            other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut variants = Vec::new();
                for variant in split_commas(&body) {
                    let j = skip_attrs_and_vis(&variant, 0);
                    let vname = match variant.get(j) {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        other => return Err(format!("bad variant in `{name}`: {other:?}")),
                    };
                    match variant.get(j + 1) {
                        None => variants.push(vname),
                        Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                            // Explicit discriminant (e.g. `Hot = 0`); name only.
                            variants.push(vname);
                        }
                        Some(_) => {
                            return Err(format!(
                                "serde stub derive supports only unit enum variants; \
                                 `{name}::{vname}` carries data"
                            ))
                        }
                    }
                }
                Ok(Input { name, shape: Shape::UnitEnum(variants) })
            }
            other => Err(format!("unsupported enum body for `{name}`: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}`")),
    }
}

/// Derives `serde::Serialize`. The `serde` helper attribute is accepted
/// (and validated during parsing) but only affects deserialization.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> =
                (0..*n).map(|ix| format!("::serde::Serialize::to_value(&self.{ix})")).collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string())"))
                .collect();
            format!("match *self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap_or_else(|e| compile_error(&format!("serde stub codegen failed: {e}")))
}

/// Derives `serde::Deserialize`, honoring `#[serde(default)]` and
/// `#[serde(default = "path")]` on named fields (absent keys call the
/// default instead of erroring, so old payloads stay loadable when a
/// struct grows a field).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let name = &f.name;
                    match &f.default {
                        Some(path) => {
                            format!("{name}: ::serde::get_field_or(map, {name:?}, {path})?")
                        }
                        None => format!("{name}: ::serde::get_field(map, {name:?})?"),
                    }
                })
                .collect();
            format!(
                "let ::serde::Value::Map(map) = v else {{\n\
                     return Err(::serde::DeError::expected(\"object\", v));\n\
                 }};\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|ix| format!("::serde::Deserialize::from_value(&items[{ix}])?"))
                .collect();
            format!(
                "let ::serde::Value::Seq(items) = v else {{\n\
                     return Err(::serde::DeError::expected(\"array\", v));\n\
                 }};\n\
                 if items.len() != {n} {{\n\
                     return Err(::serde::DeError(format!(\
                         \"expected {n} elements, got {{}}\", items.len())));\n\
                 }}\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::Unit => format!(
            "match v {{\n\
                 ::serde::Value::Null => Ok({name}),\n\
                 other => Err(::serde::DeError::expected(\"null\", other)),\n\
             }}"
        ),
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> =
                variants.iter().map(|var| format!("{var:?} => Ok({name}::{var})")).collect();
            format!(
                "let ::serde::Value::Str(s) = v else {{\n\
                     return Err(::serde::DeError::expected(\"variant string\", v));\n\
                 }};\n\
                 match s.as_str() {{\n\
                     {},\n\
                     other => Err(::serde::DeError(format!(\
                         \"unknown variant {{other:?}} for {name}\"))),\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap_or_else(|e| compile_error(&format!("serde stub codegen failed: {e}")))
}
