//! Offline stub of `serde_json`: prints and parses the serde stub's
//! [`serde::Value`] tree.
//!
//! Floats print via Rust's `Display` for `f64`, which emits the shortest
//! decimal that round-trips exactly (the upstream `float_roundtrip`
//! behavior). Non-finite floats serialize as `null`, matching upstream.

use serde::{Deserialize, Serialize, Value};

/// A serialization or parse error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
/// Infallible for the value tree this stub produces; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserializes a `T` from JSON text.
///
/// # Errors
/// Returns [`Error`] on malformed JSON or shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                let s = x.to_string();
                out.push_str(&s);
                // Keep the number a float on re-parse.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected {:?} at byte {}", b as char, self.pos)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the plain segment.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| Error(format!("bad \\u escape: {e}")))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u codepoint".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                other => return Err(Error(format!("unterminated string: {other:?}"))),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error(format!("invalid number: {e}")))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|e| Error(format!("invalid number {text:?}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&1.25f64).unwrap(), "1.25");
        assert_eq!(from_str::<f64>("1.25").unwrap(), 1.25);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<bool>("false").unwrap(), false);
        assert_eq!(to_string("a\"b\\c\n").unwrap(), r#""a\"b\\c\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\\c\n""#).unwrap(), "a\"b\\c\n");
    }

    #[test]
    fn float_shortest_round_trip() {
        for x in [0.1, 1.0 / 3.0, 6.02e23, -0.000_001_23, f64::MAX] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x, "via {s}");
        }
    }

    #[test]
    fn whole_floats_stay_floats() {
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
        assert_eq!(from_str::<f64>(&s).unwrap(), 2.0);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![vec![1u64, 2], vec![3]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[3]]");
        assert_eq!(from_str::<Vec<Vec<u64>>>(&s).unwrap(), v);
        let o: Option<Vec<f64>> = None;
        assert_eq!(to_string(&o).unwrap(), "null");
        assert_eq!(from_str::<Option<Vec<f64>>>("null").unwrap(), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("nope").is_err());
        assert!(from_str::<f64>("1.5 junk").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }

    #[test]
    fn u64_beyond_i64_survives() {
        let big = u64::MAX;
        let s = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&s).unwrap(), big);
    }
}
